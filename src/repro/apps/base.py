"""Application registry — the paper's Table 2 (overview of applications).

Each entry records the discipline, methods, and structure exactly as
Table 2 lists them, plus the original code's approximate line count,
so :mod:`repro.experiments.table2` can regenerate that table.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AppInfo:
    """One row of the paper's Table 2."""

    name: str
    key: str
    lines: str
    discipline: str
    methods: str
    structure: str


APPLICATIONS: dict[str, AppInfo] = {
    "fvcam": AppInfo(
        name="FVCAM",
        key="fvcam",
        lines="200,000+",
        discipline="Climate Modeling",
        methods="Finite Volume, Navier-Stokes, FFT",
        structure="Grid",
    ),
    "lbmhd": AppInfo(
        name="LBMHD3D",
        key="lbmhd",
        lines="1,500",
        discipline="Plasma Physics",
        methods="Magneto-Hydrodynamics, Lattice Boltzmann",
        structure="Lattice/Grid",
    ),
    "paratec": AppInfo(
        name="PARATEC",
        key="paratec",
        lines="50,000",
        discipline="Material Science",
        methods="Density Functional Theory, Kohn Sham, FFT",
        structure="Fourier/Grid",
    ),
    "gtc": AppInfo(
        name="GTC",
        key="gtc",
        lines="5,000",
        discipline="Magnetic Fusion",
        methods="Particle in Cell, gyrophase-averaged Vlasov-Poisson",
        structure="Particle/Grid",
    ),
}


def get_app_info(key: str) -> AppInfo:
    """Look up a registry entry by key (``fvcam``/``gtc``/``lbmhd``/``paratec``)."""
    info = APPLICATIONS.get(key.lower())
    if info is None:
        raise KeyError(f"unknown application {key!r}; have {sorted(APPLICATIONS)}")
    return info
