"""The four scientific applications of the paper, as working mini-apps.

Each subpackage implements the real algorithm in NumPy against the
simulated MPI runtime (:mod:`repro.simmpi`) plus an analytic workload
model used to evaluate the paper-scale performance tables:

* :mod:`repro.apps.fvcam` — finite-volume atmospheric dynamical core;
* :mod:`repro.apps.gtc` — gyrokinetic particle-in-cell turbulence;
* :mod:`repro.apps.lbmhd` — 3-D lattice Boltzmann magneto-hydrodynamics;
* :mod:`repro.apps.paratec` — plane-wave density functional theory.
"""

from .base import APPLICATIONS, AppInfo, get_app_info

__all__ = ["APPLICATIONS", "AppInfo", "get_app_info"]
