"""FVCAM driver: parallel finite-volume dynamics + remap + physics.

Each simulated rank owns a (levels, latitudes, longitudes) block of the
2-D (latitude, level) decomposition.  A time step is:

1. latitude halo exchange (2 ghost rows, van Leer stencil width);
2. directionally split conservative transport of mass and winds;
3. geopotential by vertical suffix sums — partial sums are combined
   across the level group (the low-volume vertical communication of
   Figure 2(b));
4. pressure-gradient wind update, FFT polar filter, column physics;
5. every ``remap_interval`` steps, the Lagrangian-surface remap, with
   the dynamics -> remap transposes inside each level group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from types import SimpleNamespace

import numpy as np

from ...kernels import KernelBackend, get_backend
from ...simmpi.comm import Communicator, Message
from .decomp import FVDecomposition
from .dynamics import (
    HALO,
    DynamicsParams,
    courant_lat,
    courant_lon,
    dynamics_work,
)
from .grid import LatLonGrid
from .physics import PhysicsParams, apply_physics, physics_work
from .polarfilter import apply_polar_filter, damping_coefficients, filter_work
from .vertical import remap_column, remap_work, transpose_bytes


@dataclass(frozen=True)
class FVCAMParams:
    """Configuration of an FVCAM run."""

    grid: LatLonGrid = field(default_factory=LatLonGrid)
    py: int = 1
    pz: int = 1
    dt: float = 60.0
    remap_interval: int = 4
    physics_interval: int = 4
    h0: float = 8000.0
    bump_amplitude: float = 80.0
    u0: float = 10.0
    with_physics: bool = True
    with_tracer: bool = False

    def decomposition(self) -> FVDecomposition:
        return FVDecomposition(grid=self.grid, py=self.py, pz=self.pz)


def initial_state(
    grid: LatLonGrid, h0: float, bump: float, u0: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Layered rest state + Gaussian height bump + weak zonal jet."""
    lats = grid.latitudes
    lons = grid.longitudes
    lon2d, lat2d = np.meshgrid(lons, lats)
    blob = bump * np.exp(
        -((lat2d - 0.35) ** 2 + (lon2d - np.pi) ** 2) / 0.18
    )
    h = np.repeat(
        (h0 / grid.km + blob)[None, :, :], grid.km, axis=0
    )
    u = np.repeat(
        (u0 * np.cos(lat2d))[None, :, :], grid.km, axis=0
    )
    v = np.zeros(grid.shape)
    return h, u, v


def initial_tracer(grid: LatLonGrid) -> np.ndarray:
    """A smooth [0, 1] tracer blob (specific concentration)."""
    lats = grid.latitudes
    lons = grid.longitudes
    lon2d, lat2d = np.meshgrid(lons, lats)
    blob = np.exp(-((lat2d + 0.3) ** 2 + (lon2d - np.pi / 2) ** 2) / 0.3)
    return np.repeat(blob[None, :, :], grid.km, axis=0)


# -- rank segments -----------------------------------------------------
#
# Module-level ``(rank, shm, args)`` callables (docs/executors.md),
# bound per region with ``functools.partial``.  FVCAM keeps no arena,
# so ``shm`` is always None; what matters for process executors is
# that every segment *returns* its rank's updated blocks — the parent
# applies them after the region — instead of writing ``self.h[rank]``
# and friends in place, which a forked worker cannot do.


def _padded_coslat(grid: LatLonGrid, decomp, rank: int) -> np.ndarray:
    """cos(lat) for the padded rows (clamped at the walls)."""
    ls = decomp.lat_slice(rank)
    idx = np.arange(ls.start - HALO, ls.stop + HALO)
    idx = np.clip(idx, 0, grid.jm - 1)
    return grid.coslat[idx]


def _filtered_rows_local(grid: LatLonGrid, decomp, rank: int) -> np.ndarray:
    ls = decomp.lat_slice(rank)
    rows = grid.filtered_rows
    return rows[(rows >= ls.start) & (rows < ls.stop)] - ls.start


def _apply_filter(
    grid: LatLonGrid,
    decomp,
    filter_coefs: np.ndarray,
    rank: int,
    targets: list[np.ndarray],
) -> None:
    """Polar FFT filter, in place on the segment-local target arrays."""
    ls = decomp.lat_slice(rank)
    rows_global = grid.filtered_rows
    sel = (rows_global >= ls.start) & (rows_global < ls.stop)
    if not sel.any():
        return
    rows_local = rows_global[sel] - ls.start
    coefs = filter_coefs[sel]
    for arr in targets:
        spectrum = np.fft.rfft(arr[:, rows_local, :], axis=-1)
        spectrum *= coefs
        arr[:, rows_local, :] = np.fft.irfft(
            spectrum, n=grid.im, axis=-1
        )


def _pack_segment(rank: int, shm, args) -> np.ndarray:
    """Stack one rank's fields into a ghost-padded halo block."""
    km_l, jm_l, im = args.decomp.local_shape(rank)
    nf = len(args.fields)
    block = np.empty((nf, km_l, jm_l + 2 * HALO, im))
    for f, arr in enumerate(args.fields):
        block[f, :, HALO:-HALO, :] = arr[rank]
        # replicate edges; overwritten by halo data when a neighbor
        # exists (walls keep the replication)
        block[f, :, :HALO, :] = arr[rank][:, :1, :]
        block[f, :, -HALO:, :] = arr[rank][:, -1:, :]
    return block


def _suffix_segment(rank: int, shm, args) -> np.ndarray:
    """Whole-column geopotential by vertical suffix sum (pz == 1)."""
    h_pad = args.padded[rank][0]
    return args.kernels.fvcam_geopotential(h_pad, args.gravity)


def _colsum_segment(rank: int, shm, args) -> np.ndarray:
    """One rank's level-block column sum (the pz > 1 partial)."""
    return args.padded[rank][0].sum(axis=0)


def _combine_segment(rank: int, shm, args) -> np.ndarray:
    """Combine a rank's suffix sum with the planes from lower layers."""
    h_pad = args.padded[rank][0]
    suffix = args.kernels.fvcam_suffix_sum(h_pad)
    below = np.zeros_like(args.block_sums[rank])
    for plane in args.received.get(rank, []):
        below += plane
    return args.gravity * (suffix + below[None, :, :])


def _sweep_segment(rank: int, shm, args):
    """Transport + pressure gradient + polar filter for one rank.

    Returns the rank's updated ``(h, u, v, q)`` blocks (``q`` is None
    without a tracer).
    """
    grid, decomp, dt = args.grid, args.decomp, args.dt
    km_l, jm_l, im = decomp.local_shape(rank)
    coslat_pad = _padded_coslat(grid, decomp, rank)
    h_pad, u_pad, v_pad = args.padded[rank][:3]
    q_pad = args.padded[rank][3] if args.has_tracer else None
    cu = courant_lon(grid, u_pad, coslat_pad, dt)
    cv = courant_lat(grid, v_pad, dt)

    # wall faces carry no meridional flux
    y, _ = decomp.coords(rank)
    if y == 0:
        cv[:, : HALO + 1, :] = 0.0
    if y == decomp.py - 1:
        cv[:, jm_l + HALO :, :] = 0.0

    kernels = args.kernels
    H = h_pad * coslat_pad[None, :, None]
    H_new = kernels.fvcam_transport_2d(grid, H, cu, cv)
    u_new = kernels.fvcam_transport_2d(grid, u_pad, cu, cv)
    v_new = kernels.fvcam_transport_2d(grid, v_pad, cu, cv)
    if q_pad is not None:
        # tracer mass QH advected with the same fluxes keeps a
        # constant concentration exactly constant
        QH_new = kernels.fvcam_transport_2d(grid, q_pad * H, cu, cv)

    du, dv = kernels.fvcam_pressure_gradient(
        grid, args.phis[rank], coslat_pad, dt
    )
    u_new += du
    v_new += dv

    crop = slice(HALO, HALO + jm_l)
    h = H_new[:, crop, :] / coslat_pad[None, crop, None]
    q = (
        QH_new[:, crop, :] / H_new[:, crop, :]
        if q_pad is not None
        else None
    )
    u = u_new[:, crop, :] * (1.0 - dt * args.drag)
    v = v_new[:, crop, :] * (1.0 - dt * args.drag)

    # tracer *mass* rides through the filter (which smooths air and
    # tracer consistently); the column physics afterwards moves air at
    # the local concentration, i.e. it preserves the mixing ratio q
    # rather than the tracer mass.
    q_mass = q * h if q is not None else None
    targets = [h, u, v] + ([q_mass] if q_mass is not None else [])
    _apply_filter(grid, decomp, args.filter_coefs, rank, targets)
    if q_mass is not None:
        q = q_mass / h

    points = km_l * jm_l * im
    args.comm.compute(rank, dynamics_work(grid, points))
    rows = _filtered_rows_local(grid, decomp, rank)
    args.comm.compute(
        rank, filter_work(grid, max(len(rows), 0) * km_l or 1)
    )
    return h, u, v, q


def _physics_raw_segment(rank: int, shm, args) -> np.ndarray:
    return (args.h_ref[rank] - args.h[rank]) * args.scale


def _physics_mean_segment(rank: int, shm, args) -> np.ndarray:
    return args.raw[rank].mean(axis=0, keepdims=True)


def _physics_update_segment(rank: int, shm, args):
    """Apply the mass-neutral thermal increment + drag; returns
    the rank's updated ``(h, u, v)``."""
    h = args.h[rank] + args.raw[rank] - args.means[rank]
    u = args.u[rank] * args.damp
    v = args.v[rank] * args.damp
    km_l, jm_l, im = args.decomp.local_shape(rank)
    args.comm.compute(rank, physics_work(args.grid, km_l * jm_l * im))
    return h, u, v


def _remap_segment(rank: int, shm, args):
    """Whole-column vertical remap (pz == 1); returns (h, u, v, q)."""
    fields = [args.u[rank], args.v[rank]]
    if args.q is not None:
        fields.append(args.q[rank])
    h, out = remap_column(args.h[rank], fields)
    _, jm_l, im = args.decomp.local_shape(rank)
    args.comm.compute(rank, remap_work(args.grid, jm_l * im))
    return h, out[0], out[1], (out[2] if args.q is not None else None)


def _remap_member_segment(local: int, shm, args) -> list[np.ndarray]:
    """Remap one level-group member's transposed columns; returns the
    per-member blocks for the backward transpose."""
    grank = args.granks[local]
    stacked = np.concatenate(args.recv[local], axis=1)  # full km
    h, out = remap_column(stacked[0], list(stacked[1:]))
    ncols = h.shape[1] * h.shape[2]
    args.comm.compute(grank, remap_work(args.grid, ncols))
    # backward transpose: split km again
    km_l = args.grid.km // args.gsize
    all_fields = [h, *out]
    return [
        np.stack([f[j * km_l : (j + 1) * km_l] for f in all_fields])
        for j in range(args.gsize)
    ]


class FVCAM:
    """Parallel FVCAM mini-app over a simulated communicator."""

    app_key = "fvcam"
    #: IPM phase labels of one step (physics/remap fire on their
    #: intervals only).
    phases = ("halo", "geopotential", "dynamics", "physics", "remap")

    def __init__(
        self,
        params: FVCAMParams,
        comm: Communicator,
        kernels: "str | KernelBackend | None" = None,
    ) -> None:
        self.params = params
        self.grid = params.grid
        self.comm = comm
        self.kernels = get_backend(kernels)
        self.decomp = params.decomposition()
        if comm.nprocs != self.decomp.nprocs:
            raise ValueError(
                f"communicator has {comm.nprocs} ranks, decomposition "
                f"needs {self.decomp.nprocs}"
            )
        self.level_groups = self.decomp.make_level_groups(comm)
        self.dyn = DynamicsParams(dt=params.dt)
        self.phys = PhysicsParams()
        self._filter_coefs = damping_coefficients(self.grid)

        h, u, v = initial_state(
            self.grid, params.h0, params.bump_amplitude, params.u0
        )
        self.h = self.decomp.scatter(h)
        self.u = self.decomp.scatter(u)
        self.v = self.decomp.scatter(v)
        self.h_ref = self.decomp.scatter(h * 0 + params.h0 / self.grid.km)
        self.q: list[np.ndarray] | None = None
        if params.with_tracer:
            self.q = self.decomp.scatter(initial_tracer(self.grid))
        self.step_count = 0

    # -- halo machinery ------------------------------------------------------

    def _fields(self) -> tuple[list[np.ndarray], ...]:
        if self.q is None:
            return (self.h, self.u, self.v)
        return (self.h, self.u, self.v, self.q)

    def _padded(self) -> list[np.ndarray]:
        """Stacked (nf, km_local, jm_local + 2 HALO, im) padded fields."""
        args = SimpleNamespace(decomp=self.decomp, fields=self._fields())
        padded = self.comm.map_ranks(
            partial(_pack_segment, shm=None, args=args)
        )

        messages = []
        for rank in range(self.comm.nprocs):
            south, north = self.decomp.lat_neighbors(rank)
            core = padded[rank][:, :, HALO:-HALO, :]
            if south is not None:
                messages.append(
                    Message(rank, south, core[:, :, :HALO, :], tag=0)
                )
            if north is not None:
                messages.append(
                    Message(rank, north, core[:, :, -HALO:, :], tag=1)
                )
        received = self.comm.exchange(messages)
        counters: dict[int, int] = {}
        for m in messages:
            i = counters.get(m.dst, 0)
            counters[m.dst] = i + 1
            payload = received[m.dst][i]
            if m.tag == 0:  # a south-going block fills receiver's north ghost
                padded[m.dst][:, :, -HALO:, :] = payload
            else:
                padded[m.dst][:, :, :HALO, :] = payload
        return padded

    def _padded_coslat(self, rank: int) -> np.ndarray:
        """Back-compat shim over the module-level helper."""
        return _padded_coslat(self.grid, self.decomp, rank)

    # -- vertical geopotential ----------------------------------------------

    def _geopotential(self, padded: list[np.ndarray]) -> list[np.ndarray]:
        """Phi on padded rows, combining level-group partial sums.

        With ``pz > 1`` each rank sends its level-block column-sum plane
        to the ranks holding *higher* layers (smaller level index) —
        the low-volume vertical communication that shows up as the
        ``Pz - 1`` lines parallel to the diagonal in Figure 2(b).
        """
        args = SimpleNamespace(
            padded=padded, gravity=self.grid.gravity, kernels=self.kernels
        )
        if self.decomp.pz == 1:
            return self.comm.map_ranks(
                partial(_suffix_segment, shm=None, args=args)
            )

        sums = self.comm.map_ranks(
            partial(_colsum_segment, shm=None, args=args)
        )
        block_sums = dict(enumerate(sums))
        messages = []
        for rank in range(self.comm.nprocs):
            y, z = self.decomp.coords(rank)
            for z_above in range(z):  # ranks holding higher layers
                messages.append(
                    Message(
                        rank,
                        self.decomp.rank_of(y, z_above),
                        block_sums[rank],
                        tag=z,
                    )
                )
        received = self.comm.exchange(messages)
        args.block_sums = block_sums
        args.received = received
        return self.comm.map_ranks(
            partial(_combine_segment, shm=None, args=args)
        )

    # -- time stepping ---------------------------------------------------------

    def step(self) -> None:
        grid = self.grid
        dt = self.params.dt
        with self.comm.phase("halo"):
            padded = self._padded()
        with self.comm.phase("geopotential"):
            phis = self._geopotential(padded)

        with self.comm.phase("dynamics"):
            self._dynamics_sweep(padded, phis)

        self.step_count += 1
        # As in CAM itself, the physics runs on the long time step, with
        # several dynamics sub-steps beneath it.
        if (
            self.params.with_physics
            and self.step_count % self.params.physics_interval == 0
        ):
            with self.comm.phase("physics"):
                self._physics_phase(dt * self.params.physics_interval)
        if self.step_count % self.params.remap_interval == 0:
            with self.comm.phase("remap"):
                self.remap()

    def _dynamics_sweep(
        self, padded: list[np.ndarray], phis: list[np.ndarray]
    ) -> None:
        """Transport + pressure gradient + polar filter on every rank."""
        args = SimpleNamespace(
            comm=self.comm,
            grid=self.grid,
            decomp=self.decomp,
            dt=self.params.dt,
            padded=padded,
            phis=phis,
            has_tracer=self.q is not None,
            drag=self.dyn.drag,
            filter_coefs=self._filter_coefs,
            kernels=self.kernels,
        )
        swept = self.comm.map_ranks(
            partial(_sweep_segment, shm=None, args=args)
        )
        for rank, (h, u, v, q) in enumerate(swept):
            self.h[rank], self.u[rank], self.v[rank] = h, u, v
            if self.q is not None:
                self.q[rank] = q

    def _filtered_rows_local(self, rank: int) -> np.ndarray:
        """Back-compat shim over the module-level helper."""
        return _filtered_rows_local(self.grid, self.decomp, rank)

    def _apply_local_filter(
        self, rank: int, q_mass: np.ndarray | None = None
    ) -> None:
        """Back-compat shim: filters this rank's live fields in place."""
        targets = [self.h[rank], self.u[rank], self.v[rank]]
        if q_mass is not None:
            targets.append(q_mass)
        _apply_filter(
            self.grid, self.decomp, self._filter_coefs, rank, targets
        )

    # -- physics phase ---------------------------------------------------

    def _physics_phase(self, dt: float) -> None:
        """Column physics: relaxation de-meaned over the *full* column.

        The thermal increment must be mass-neutral per column; with
        ``pz > 1`` the column spans the level group, so the vertical
        mean is combined across it — the same reason real CAM runs its
        physics in a whole-column decomposition.
        """
        km = self.grid.km
        args = SimpleNamespace(
            comm=self.comm,
            grid=self.grid,
            decomp=self.decomp,
            h=self.h,
            u=self.u,
            v=self.v,
            h_ref=self.h_ref,
            scale=dt / self.phys.tau_thermal,
        )
        raw = self.comm.map_ranks(
            partial(_physics_raw_segment, shm=None, args=args)
        )
        args.raw = raw
        if self.decomp.pz == 1:
            means = self.comm.map_ranks(
                partial(_physics_mean_segment, shm=None, args=args)
            )
        else:
            means = [None] * self.comm.nprocs
            for group in self.level_groups:
                contribs = [
                    raw[grank].sum(axis=0) for grank in group.ranks
                ]
                summed = group.allreduce(contribs)
                for local, grank in enumerate(group.ranks):
                    means[grank] = (summed[local] / km)[None, :, :]
        args.means = means
        args.damp = 1.0 - dt / self.phys.tau_drag
        updated = self.comm.map_ranks(
            partial(_physics_update_segment, shm=None, args=args)
        )
        for rank, (h, u, v) in enumerate(updated):
            self.h[rank], self.u[rank], self.v[rank] = h, u, v

    # -- remap phase ---------------------------------------------------------

    def remap(self) -> None:
        """Vertical remap, transposing level blocks within each group."""
        pz = self.decomp.pz
        grid = self.grid
        if pz == 1:
            args = SimpleNamespace(
                comm=self.comm,
                grid=grid,
                decomp=self.decomp,
                h=self.h,
                u=self.u,
                v=self.v,
                q=self.q,
            )
            remapped = self.comm.map_ranks(
                partial(_remap_segment, shm=None, args=args)
            )
            for rank, (h, u, v, q) in enumerate(remapped):
                self.h[rank], self.u[rank], self.v[rank] = h, u, v
                if self.q is not None:
                    self.q[rank] = q
            return

        for group in self.level_groups:
            gsize = len(group.ranks)
            lon_bounds = np.linspace(0, grid.im, gsize + 1).astype(int)
            # forward transpose: (km/pz, jm_l, im) -> (km, jm_l, im/pz)
            field_lists = self._fields()
            send = [
                [
                    np.stack(
                        [
                            arr[grank][
                                :, :, lon_bounds[j] : lon_bounds[j + 1]
                            ]
                            for arr in field_lists
                        ]
                    )
                    for j in range(gsize)
                ]
                for grank in group.ranks
            ]
            recv = group.alltoallv(send)
            args = SimpleNamespace(
                comm=self.comm,
                grid=grid,
                granks=group.ranks,
                gsize=gsize,
                recv=recv,
            )
            sent_back = self.comm.map_ranks(
                partial(_remap_member_segment, shm=None, args=args),
                indices=range(gsize),
            )
            back = group.alltoallv(sent_back)
            for local, grank in enumerate(group.ranks):
                blocks = back[local]  # from each member: its lon chunk
                restored = np.concatenate(blocks, axis=3)
                self.h[grank] = restored[0].copy()
                self.u[grank] = restored[1].copy()
                self.v[grank] = restored[2].copy()
                if self.q is not None:
                    self.q[grank] = restored[3].copy()

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    # -- checkpoint/restart ------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Snapshot the prognostic fields (``Checkpointable``).

        ``h_ref`` and the damping coefficients are constants; halo
        padding is rebuilt every dynamics step.
        """
        snap: dict = {
            "step_count": self.step_count,
            "h": [np.array(a, copy=True) for a in self.h],
            "u": [np.array(a, copy=True) for a in self.u],
            "v": [np.array(a, copy=True) for a in self.v],
        }
        if self.q is not None:
            snap["q"] = [np.array(a, copy=True) for a in self.q]
        return snap

    def restore_state(self, snapshot: dict) -> None:
        if len(snapshot["h"]) != self.comm.nprocs:
            raise ValueError("checkpoint rank count mismatch")
        self.h = [np.array(a, copy=True) for a in snapshot["h"]]
        self.u = [np.array(a, copy=True) for a in snapshot["u"]]
        self.v = [np.array(a, copy=True) for a in snapshot["v"]]
        if self.q is not None:
            self.q = [np.array(a, copy=True) for a in snapshot["q"]]
        self.step_count = int(snapshot["step_count"])

    # -- observation -------------------------------------------------------------

    def global_fields(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            self.decomp.gather(self.h),
            self.decomp.gather(self.u),
            self.decomp.gather(self.v),
        )

    def global_tracer(self) -> np.ndarray:
        if self.q is None:
            raise RuntimeError("run with with_tracer=True")
        return self.decomp.gather(self.q)

    def tracer_mass(self) -> float:
        """Area-weighted tracer mass (sum of q h cos(lat); conserved)."""
        if self.q is None:
            raise RuntimeError("run with with_tracer=True")
        total = 0.0
        for rank in range(self.comm.nprocs):
            coslat = self.grid.coslat[self.decomp.lat_slice(rank)]
            total += float(
                (self.q[rank] * self.h[rank] * coslat[None, :, None]).sum()
            )
        return total

    def total_mass(self) -> float:
        """Area-weighted global mass (conserved to round-off)."""
        total = 0.0
        for rank in range(self.comm.nprocs):
            coslat = self.grid.coslat[self.decomp.lat_slice(rank)]
            total += float(
                (self.h[rank] * coslat[None, :, None]).sum()
            )
        return total

    @property
    def flops_per_step(self) -> float:
        points = self.grid.total_points
        w = dynamics_work(self.grid, points).flops
        if self.params.with_physics:
            w += physics_work(self.grid, points).flops
        return w
