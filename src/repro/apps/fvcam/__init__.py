"""FVCAM — finite-volume Community Atmosphere Model dycore (paper §3)."""

from .decomp import FVDecomposition
from .eulerian import (
    EulerianCore,
    eulerian_step_work,
    rossby_haurwitz_rate,
)
from .spectral import (
    SpharmTransform,
    gauss_latitudes,
    legendre_functions,
)
from .dynamics import (
    HALO,
    DynamicsParams,
    courant_lat,
    courant_lon,
    dynamics_work,
    geopotential,
    pressure_gradient,
    transport_2d,
)
from .grid import D_GRID, EARTH_RADIUS, LatLonGrid
from .physics import PhysicsParams, apply_physics, physics_work
from .polarfilter import (
    apply_polar_filter,
    damping_coefficients,
    filter_work,
)
from .ppm import advect, advect_vanleer, upwind_flux, vanleer_flux
from .solver import FVCAM, FVCAMParams, initial_state
from .vertical import remap_column, remap_work, transpose_bytes
from .workload import (
    OPENMP_THREADS,
    PAPER_GRID,
    TABLE3_ROWS,
    FVCAMScenario,
    predict,
    simulated_days_per_day,
)

__all__ = [
    "D_GRID",
    "EARTH_RADIUS",
    "FVCAM",
    "FVCAMParams",
    "FVCAMScenario",
    "FVDecomposition",
    "HALO",
    "DynamicsParams",
    "EulerianCore",
    "LatLonGrid",
    "SpharmTransform",
    "OPENMP_THREADS",
    "PAPER_GRID",
    "PhysicsParams",
    "TABLE3_ROWS",
    "advect",
    "advect_vanleer",
    "apply_physics",
    "apply_polar_filter",
    "courant_lat",
    "courant_lon",
    "damping_coefficients",
    "dynamics_work",
    "eulerian_step_work",
    "filter_work",
    "gauss_latitudes",
    "geopotential",
    "initial_state",
    "legendre_functions",
    "physics_work",
    "predict",
    "pressure_gradient",
    "remap_column",
    "rossby_haurwitz_rate",
    "remap_work",
    "simulated_days_per_day",
    "transport_2d",
    "transpose_bytes",
    "upwind_flux",
    "vanleer_flux",
]
