"""Spherical-harmonic transform machinery (CAM's Eulerian option).

"The dynamical core of CAM provides two very different options for
solving the equations of motion.  The first option, known as the
Eulerian spectral transform method, exploits spherical harmonics to map
a solution onto the sphere."  This module implements that machinery at
mini-app scale: Gauss–Legendre latitudes, orthonormal associated
Legendre functions by stable recurrence, and the forward/inverse
spherical-harmonic transform (FFT in longitude, Legendre quadrature in
latitude) with its spectral Laplacian.

Conventions: triangular truncation ``T = lmax``; a real field on the
``(nlat, nlon)`` Gaussian grid maps to complex coefficients ``f[l, m]``
for ``0 <= m <= l <= lmax`` (negative-m coefficients are implied by the
reality condition).  The associated Legendre functions are orthonormal
on mu in [-1, 1]:  integral(P_lm * P_l'm) = delta_ll'.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def gauss_latitudes(nlat: int) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian quadrature nodes (mu = sin(lat)) and weights.

    Nodes ascend from south to north; weights integrate degree
    2*nlat - 1 polynomials exactly — the property the Legendre analysis
    relies on.
    """
    if nlat < 2:
        raise ValueError("need at least two latitudes")
    nodes, weights = np.polynomial.legendre.leggauss(nlat)
    return nodes, weights


def legendre_functions(lmax: int, mu: np.ndarray) -> np.ndarray:
    """Orthonormal associated Legendre functions P[l, m, j].

    Shape (lmax+1, lmax+1, len(mu)); entries with m > l are zero.
    Computed with the standard stable (m-first) recurrence.
    """
    if lmax < 0:
        raise ValueError("lmax must be non-negative")
    mu = np.asarray(mu, dtype=np.float64)
    sin_term = np.sqrt(np.maximum(1.0 - mu * mu, 0.0))
    p = np.zeros((lmax + 1, lmax + 1, len(mu)))

    # diagonal: P_mm
    p[0, 0] = np.sqrt(0.5)
    for m in range(1, lmax + 1):
        p[m, m] = (
            -np.sqrt((2.0 * m + 1.0) / (2.0 * m)) * sin_term * p[m - 1, m - 1]
        )
    # first off-diagonal: P_{m+1, m}
    for m in range(lmax):
        p[m + 1, m] = np.sqrt(2.0 * m + 3.0) * mu * p[m, m]
    # general recurrence
    for m in range(lmax + 1):
        for l in range(m + 2, lmax + 1):
            a = np.sqrt(
                (4.0 * l * l - 1.0) / (l * l - m * m)
            )
            b = np.sqrt(
                ((2.0 * l + 1.0) * ((l - 1.0) ** 2 - m * m))
                / ((2.0 * l - 3.0) * (l * l - m * m))
            )
            p[l, m] = a * mu * p[l - 1, m] - b * p[l - 2, m]
    return p


@dataclass
class SpharmTransform:
    """Forward/inverse spherical-harmonic transform at truncation T=lmax.

    Grid: ``nlat`` Gaussian latitudes x ``nlon`` equispaced longitudes,
    with the alias-free defaults ``nlat = lmax + 1`` (adequate for
    quadratic terms use ~3*lmax/2) and ``nlon >= 2*lmax + 1``.
    """

    lmax: int
    nlat: int | None = None
    nlon: int | None = None
    radius: float = 1.0
    mu: np.ndarray = field(init=False)
    weights: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.lmax < 1:
            raise ValueError("lmax must be >= 1")
        if self.nlat is None:
            self.nlat = self.lmax + 1
        if self.nlon is None:
            self.nlon = max(2 * self.lmax + 1, 4)
        if self.nlat < self.lmax + 1:
            raise ValueError("nlat must be at least lmax + 1")
        if self.nlon < 2 * self.lmax + 1:
            raise ValueError("nlon must be at least 2*lmax + 1")
        self.mu, self.weights = gauss_latitudes(self.nlat)
        # one extra degree so the mu-derivative recurrence stays exact
        self._plm_ext = legendre_functions(self.lmax + 1, self.mu)
        self._plm = self._plm_ext[: self.lmax + 1, : self.lmax + 1]

    @property
    def grid_shape(self) -> tuple[int, int]:
        return (self.nlat, self.nlon)

    @property
    def latitudes(self) -> np.ndarray:
        """Latitudes in radians, south to north."""
        return np.arcsin(self.mu)

    @property
    def longitudes(self) -> np.ndarray:
        return 2.0 * np.pi * np.arange(self.nlon) / self.nlon

    def spectral_shape(self) -> tuple[int, int]:
        return (self.lmax + 1, self.lmax + 1)

    def analysis(self, grid: np.ndarray) -> np.ndarray:
        """Grid (nlat, nlon) real field -> spectral f[l, m] (complex).

        Only ``m <= lmax`` Fourier modes are used (triangular
        truncation); higher zonal wavenumbers on the grid are discarded.
        """
        if grid.shape != self.grid_shape:
            raise ValueError("field does not match the transform grid")
        fm = np.fft.rfft(grid, axis=1) / self.nlon  # (nlat, nlon//2+1)
        coeffs = np.zeros(self.spectral_shape(), dtype=complex)
        # quadrature: f_lm = 2 pi ... folded into the normalization below
        for m in range(self.lmax + 1):
            # w_j * fm[j, m] summed against P_lm(mu_j)
            weighted = self.weights * fm[:, m]
            coeffs[m:, m] = self._plm[m:, m, :] @ weighted
        return coeffs

    def synthesis(self, coeffs: np.ndarray) -> np.ndarray:
        """Spectral f[l, m] -> grid (nlat, nlon) real field."""
        if coeffs.shape != self.spectral_shape():
            raise ValueError("coefficients do not match the truncation")
        fm = np.zeros((self.nlat, self.nlon // 2 + 1), dtype=complex)
        for m in range(self.lmax + 1):
            fm[:, m] = self._plm[m:, m, :].T @ coeffs[m:, m]
        return np.fft.irfft(fm * self.nlon, n=self.nlon, axis=1)

    def synthesis_dlambda(self, coeffs: np.ndarray) -> np.ndarray:
        """Grid field of the zonal derivative d f / d lambda."""
        m = np.arange(self.lmax + 1)
        return self.synthesis_complex(coeffs * (1j * m)[None, :])

    def synthesis_complex(self, coeffs: np.ndarray) -> np.ndarray:
        """Synthesis allowing non-real results (internal helper)."""
        fm = np.zeros((self.nlat, self.nlon // 2 + 1), dtype=complex)
        for m in range(self.lmax + 1):
            fm[:, m] = self._plm[m:, m, :].T @ coeffs[m:, m]
        return np.fft.irfft(fm * self.nlon, n=self.nlon, axis=1)

    def synthesis_mu_derivative(self, coeffs: np.ndarray) -> np.ndarray:
        """Grid field of (1 - mu^2) * d f / d mu.

        Uses the exact recurrence
        ``(1-mu^2) dP_lm/dmu = -l e_{l+1,m} P_{l+1,m} + (l+1) e_{l,m} P_{l-1,m}``
        with ``e_{l,m} = sqrt((l^2-m^2)/(4l^2-1))``, carried out with the
        internally extended (lmax+1) Legendre table so no term is lost.
        """
        if coeffs.shape != self.spectral_shape():
            raise ValueError("coefficients do not match the truncation")
        L = self.lmax

        def eps(l: np.ndarray, m: int) -> np.ndarray:
            l = np.asarray(l, dtype=np.float64)
            return np.sqrt(
                np.maximum(l * l - m * m, 0.0) / (4.0 * l * l - 1.0)
            )

        fm = np.zeros((self.nlat, self.nlon // 2 + 1), dtype=complex)
        for m in range(L + 1):
            # target degrees go up to L+1 in the extended table
            g = np.zeros(L + 2, dtype=complex)
            for l in range(m, L + 1):
                c = coeffs[l, m]
                if c == 0:
                    continue
                # contributes -l e_{l+1,m} to degree l+1 ...
                g[l + 1] += -l * eps(np.array(l + 1.0), m) * c
                # ... and +(l+1) e_{l,m} to degree l-1
                if l - 1 >= m:
                    g[l - 1] += (l + 1.0) * eps(np.array(float(l)), m) * c
            fm[:, m] = self._plm_ext[m:, m, :].T @ g[m:]
        return np.fft.irfft(fm * self.nlon, n=self.nlon, axis=1)

    def laplacian_eigenvalues(self) -> np.ndarray:
        """-l(l+1)/a^2 per degree l (the spherical Laplacian spectrum)."""
        l = np.arange(self.lmax + 1, dtype=np.float64)
        return -l * (l + 1.0) / (self.radius**2)

    def laplacian(self, coeffs: np.ndarray) -> np.ndarray:
        """Spectral Laplacian: multiply each degree by -l(l+1)/a^2."""
        return coeffs * self.laplacian_eigenvalues()[:, None]

    def inverse_laplacian(self, coeffs: np.ndarray) -> np.ndarray:
        """Solve nabla^2 psi = f spectrally (the l=0 mode is gauged to 0)."""
        eig = self.laplacian_eigenvalues()
        out = np.zeros_like(coeffs)
        out[1:, :] = coeffs[1:, :] / eig[1:, None]
        return out
