"""Paper-scale performance prediction for FVCAM (Table 3, Figures 3-4).

The benchmark is the 0.5 x 0.625 degree "D" mesh (576 x 361 x 26) in
three decompositions: 1-D latitude, and 2-D (latitude, level) with
``pz`` of 4 or 7.  OpenMP hybrid parallelism is used where it helped —
"only on the Power3 and ES did OpenMP enhance performance ... four
OpenMP threads was the optimal choice" — which multiplies the latitude
count per subdomain and relaxes the 3-latitude MPI limit.

The modeled mechanisms behind the paper's trends:

* fixed problem size: per-processor work falls linearly, halo and
  transpose communication falls more slowly -> %peak declines with P;
* "the vector platforms also suffer from a reduction in vector lengths
  at increasing concurrencies" — the polar-filter FFT batch width is
  the latitude count per subdomain;
* the X1E's higher clock without commensurate memory/interconnect
  improvement caps its gain over the X1 at ~14%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...machines.catalog import get_machine
from ...machines.processor import make_model
from ...machines.spec import MachineSpec, ProcessorKind
from ...network.collectives import CollectiveModel
from ...network.model import NetworkModel
from ...perfmodel.efficiency import get_calibration
from ...perfmodel.report import PerfResult
from ...workload import Work, combine
from .dynamics import dynamics_work
from .grid import D_GRID, LatLonGrid
from .physics import physics_work
from .polarfilter import filter_work
from .vertical import remap_work

#: The D-mesh at paper scale (full-sphere latitude count).
PAPER_GRID = LatLonGrid(im=D_GRID[0], jm=D_GRID[1], km=D_GRID[2] + 0)

#: Machines that benefited from OpenMP, and the thread count used.
OPENMP_THREADS = {"Power3": 4, "ES": 4}

#: Dynamics steps between remaps, and the remap's share of a step.
REMAP_INTERVAL = 4


@dataclass(frozen=True)
class FVCAMScenario:
    """One Table 3 row: decomposition x processor count."""

    nprocs: int
    pz: int = 1  # 1 -> "1D"

    @property
    def label(self) -> str:
        return "1D" if self.pz == 1 else f"2D-{self.pz}v"


#: The (decomposition, P) cells of Table 3.
TABLE3_ROWS: tuple[FVCAMScenario, ...] = (
    FVCAMScenario(32, 1),
    FVCAMScenario(64, 1),
    FVCAMScenario(128, 1),
    FVCAMScenario(256, 1),
    FVCAMScenario(128, 4),
    FVCAMScenario(256, 4),
    FVCAMScenario(376, 4),
    FVCAMScenario(512, 4),
    FVCAMScenario(336, 7),
    FVCAMScenario(644, 7),
    FVCAMScenario(672, 7),
    FVCAMScenario(896, 7),
    FVCAMScenario(1680, 7),
)

#: OpenMP parallel efficiency within an SMP node.
OMP_EFFICIENCY = 0.85


def layout(spec: MachineSpec, scenario: FVCAMScenario) -> tuple[int, float]:
    """(MPI ranks, latitudes per subdomain) for a machine/scenario."""
    threads = OPENMP_THREADS.get(spec.name, 1)
    ranks = max(1, scenario.nprocs // threads)
    py = max(1, ranks // scenario.pz)
    lats = PAPER_GRID.jm / py
    return ranks, lats


def rank_step_work(spec: MachineSpec, scenario: FVCAMScenario) -> Work:
    """Per-*processor* compute Work of one dynamics+physics step.

    The vector port "moved the latitude loops to the lowest level, to
    provide greatest opportunity for parallelism" — so the vector
    length of the dynamics (and of the batched polar-filter FFTs) is
    the latitude count of the subdomain, the quantity a finer
    decomposition starves.
    """
    grid = PAPER_GRID
    points_per_proc = grid.total_points / scenario.nprocs
    _, lats = layout(spec, scenario)

    from dataclasses import replace

    # Dynamics inner loops sweep latitude tiles by unrolled longitude
    # blocks; the polar-filter FFT batch is limited by the raw latitude
    # count (the harsher constraint, kept separate below).
    dyn = replace(
        dynamics_work(grid, int(points_per_proc)),
        avg_vector_length=float(max(2.0, min(256.0, lats * 16.0))),
    )
    phys = physics_work(grid, int(points_per_proc))

    # polar filter: ~1/3 of latitudes are filtered; the FFT batch width
    # on this processor is its share of the subdomain's filtered rows.
    filtered_share = len(grid.filtered_rows) / grid.jm
    rows_local = max(1, int(filtered_share * lats))
    filt = filter_work(
        grid, rows_local * max(1, grid.km // scenario.pz)
    )
    filt = replace(
        filt, avg_vector_length=float(max(1.0, min(256.0, rows_local)))
    )

    remap = remap_work(
        grid, int(grid.points_per_level / scenario.nprocs)
    ).scaled(1.0 / REMAP_INTERVAL)
    return combine([dyn, phys, filt, remap], name="fvcam.step")


def kernel_works(spec: MachineSpec, scenario: FVCAMScenario) -> dict:
    """Named per-processor compute kernels of one step."""
    from dataclasses import replace

    grid = PAPER_GRID
    points_per_proc = grid.total_points / scenario.nprocs
    _, lats = layout(spec, scenario)
    filtered_share = len(grid.filtered_rows) / grid.jm
    rows_local = max(1, int(filtered_share * lats))
    return {
        "dynamics": replace(
            dynamics_work(grid, int(points_per_proc)),
            avg_vector_length=float(max(2.0, min(256.0, lats * 16.0))),
        ),
        "physics": physics_work(grid, int(points_per_proc)),
        "polar filter": replace(
            filter_work(grid, rows_local * max(1, grid.km // scenario.pz)),
            avg_vector_length=float(max(1.0, min(256.0, rows_local))),
        ),
        "vertical remap": remap_work(
            grid, int(grid.points_per_level / scenario.nprocs)
        ).scaled(1.0 / REMAP_INTERVAL),
    }


def comm_times(spec: MachineSpec, scenario: FVCAMScenario) -> dict:
    """Named per-processor communication costs of one step."""
    grid = PAPER_GRID
    ranks, _ = layout(spec, scenario)
    net = NetworkModel(spec, ranks)
    coll = CollectiveModel(net)
    km_local = max(1, grid.km // scenario.pz)
    halo_bytes = 2 * grid.im * km_local * 3 * 8.0
    out = {
        "latitude halos": 4.0 * coll.halo_exchange(halo_bytes, 2)
        + 2.0 * coll.allreduce(8.0, ranks)
    }
    if scenario.pz > 1:
        from .vertical import transpose_bytes

        py = max(1, ranks // scenario.pz)
        vert_bytes = (
            scenario.pz * (grid.jm / py) * grid.im * 8.0
        )
        out["vertical sums"] = coll.allreduce(vert_bytes, scenario.pz)
        out["remap transposes"] = (
            2.0
            * coll.transpose(
                transpose_bytes(grid, py, scenario.pz), scenario.pz
            )
            / REMAP_INTERVAL
        )
    return out


def step_time(spec: MachineSpec, scenario: FVCAMScenario) -> tuple[float, float]:
    """(compute_seconds, comm_seconds) per step per processor."""
    grid = PAPER_GRID
    work = rank_step_work(spec, scenario)
    model = make_model(spec)
    t_comp = model.time(work)
    threads = OPENMP_THREADS.get(spec.name, 1)
    if threads > 1:
        t_comp /= OMP_EFFICIENCY
    # "load balancing improves performance within the physics package
    # ... Only on the Cray X1 and X1E did load balancing improve
    # performance" -- the others carry a growing physics imbalance.
    if spec.name not in ("X1", "X1E", "X1-SSP"):
        ranks_lb = max(1, scenario.nprocs // threads)
        t_comp *= 1.0 + 0.04 * np.log2(max(ranks_lb, 2))

    ranks, _ = layout(spec, scenario)
    net = NetworkModel(spec, ranks)
    coll = CollectiveModel(net)
    km_local = max(1, grid.km // scenario.pz)
    # the split scheme exchanges halos once per directional sweep and
    # sub-step: ~4 exchanges of 2 ghost rows x 3 fields per time step,
    # plus two scalar reductions (CFL checks / diagnostics).
    halo_bytes = 2 * grid.im * km_local * 3 * 8.0
    t_halo = 4.0 * coll.halo_exchange(halo_bytes, num_neighbors=2)
    t_halo += 2.0 * coll.allreduce(8.0, ranks)

    t_vert = 0.0
    t_transpose = 0.0
    if scenario.pz > 1:
        vert_bytes = scenario.pz * (grid.jm / max(1, ranks // scenario.pz)) * grid.im * 8.0
        t_vert = coll.allreduce(vert_bytes, scenario.pz)
        from .vertical import transpose_bytes

        py = max(1, ranks // scenario.pz)
        t_transpose = (
            2.0
            * coll.transpose(
                transpose_bytes(grid, py, scenario.pz), scenario.pz
            )
            / REMAP_INTERVAL
        )
    return t_comp, t_halo + t_vert + t_transpose


def predict(machine: str, scenario: FVCAMScenario) -> PerfResult:
    """Modeled Table 3 cell for one machine."""
    spec = get_machine(machine)
    t_comp, t_comm = step_time(spec, scenario)
    residual = get_calibration("fvcam", spec.name)
    t_total = t_comp / residual + t_comm
    flops = rank_step_work(spec, scenario).flops
    return PerfResult(
        app="fvcam",
        machine=spec.name,
        nprocs=scenario.nprocs,
        gflops_per_proc=flops / t_total / 1e9,
        config=scenario.label,
        wall_seconds=t_total,
        total_flops=flops * scenario.nprocs,
    )


#: Simulated seconds advanced per modeled dynamics step.  The 0.5
#: degree D-mesh CFL forces ~18 s effective dynamics substeps (the
#: large physics step is split into many Lagrangian sub-steps).
DT_SECONDS = 18.0


def simulated_days_per_day(machine: str, scenario: FVCAMScenario) -> float:
    """Figure 4's metric: simulated days per wall-clock day.

    One simulated day needs 86400 / DT_SECONDS dynamics steps; each
    step costs the modeled wall time.
    """
    spec = get_machine(machine)
    t_comp, t_comm = step_time(spec, scenario)
    residual = get_calibration("fvcam", spec.name)
    t_step = t_comp / residual + t_comm
    steps_per_sim_day = 86400.0 / DT_SECONDS
    return 86400.0 / (steps_per_sim_day * t_step)
