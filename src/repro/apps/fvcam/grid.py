"""Latitude–longitude grid for the finite-volume dynamical core.

"The underlying finite volume grid is logically rectangular in
(longitude, latitude, level)".  The paper's benchmark is the 0.5 x
0.625 degree "D" mesh: 576 longitudes x 361 latitudes x 26 levels.

The mini-app caps the latitudes short of the poles (a polar cap would
need the full Lin–Rood pole treatment); the FFT polar filter is still
applied poleward of a threshold latitude, which is what matters for the
performance character ("the singularity in the horizontal coordinate
system at the pole makes a longitudinal decomposition unattractive").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The paper's high-resolution benchmark mesh.
D_GRID = (576, 361, 26)

#: Earth radius used for metric terms (unit sphere also fine for tests).
EARTH_RADIUS = 6.371e6


@dataclass(frozen=True)
class LatLonGrid:
    """A (longitude, latitude, level) mesh with spherical metrics.

    Attributes
    ----------
    im, jm, km:
        Longitude, latitude, and vertical level counts.
    lat_cap_deg:
        Latitudes span ``[-lat_cap_deg, +lat_cap_deg]``.
    filter_lat_deg:
        FFT polar filtering applies poleward of this latitude.
    """

    im: int = 24
    jm: int = 19
    km: int = 4
    radius: float = EARTH_RADIUS
    lat_cap_deg: float = 80.0
    filter_lat_deg: float = 60.0
    gravity: float = 9.80616

    def __post_init__(self) -> None:
        if self.im < 4 or self.jm < 5 or self.km < 1:
            raise ValueError("grid too small")
        if not 0 < self.filter_lat_deg < self.lat_cap_deg < 90.0:
            raise ValueError("need 0 < filter_lat < lat_cap < 90 degrees")

    @property
    def shape(self) -> tuple[int, int, int]:
        """Array shape convention: (km, jm, im)."""
        return (self.km, self.jm, self.im)

    @property
    def dlon(self) -> float:
        return 2.0 * np.pi / self.im

    @property
    def dlat(self) -> float:
        return 2.0 * np.deg2rad(self.lat_cap_deg) / (self.jm - 1)

    @property
    def latitudes(self) -> np.ndarray:
        """Cell-center latitudes (radians), south to north."""
        cap = np.deg2rad(self.lat_cap_deg)
        return np.linspace(-cap, cap, self.jm)

    @property
    def longitudes(self) -> np.ndarray:
        return self.dlon * np.arange(self.im)

    @property
    def coslat(self) -> np.ndarray:
        return np.cos(self.latitudes)

    @property
    def filtered_rows(self) -> np.ndarray:
        """Latitude indices where the polar filter applies."""
        return np.nonzero(
            np.abs(self.latitudes) > np.deg2rad(self.filter_lat_deg)
        )[0]

    def cell_area(self) -> np.ndarray:
        """Cell areas (jm, im), proportional to cos(lat)."""
        area_j = (
            self.radius**2 * self.dlon * self.dlat * self.coslat
        )
        return np.repeat(area_j[:, None], self.im, axis=1)

    @property
    def points_per_level(self) -> int:
        return self.im * self.jm

    @property
    def total_points(self) -> int:
        return self.im * self.jm * self.km
