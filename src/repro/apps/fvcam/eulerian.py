"""The Eulerian spectral-transform dynamical core (CAM's first option).

A barotropic vorticity model on the rotating sphere, advanced with the
classic *spectral transform method*: the state lives as spherical-
harmonic coefficients; each step synthesizes winds and vorticity
gradients onto the Gaussian grid, forms the nonlinear advection there,
and analyzes the tendency back — exactly the computational structure
("exploits spherical harmonics to map a solution onto the sphere")
whose Legendre- and FFT-heavy kernels made the Eulerian core the
traditional vector-machine favorite.

Equations (nondivergent barotropic vorticity on a sphere of radius a):

    d zeta / dt = -J(psi, zeta + f),   nabla^2 psi = zeta,
    f = 2 Omega mu

with optional del^4 hyperdiffusion.  Time stepping: RK3 (SSP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...workload import Work
from .spectral import SpharmTransform


@dataclass
class EulerianCore:
    """Spectral barotropic vorticity model.

    Attributes
    ----------
    transform:
        The spherical-harmonic engine (grid + truncation + radius).
    omega:
        Planetary rotation rate (rad/s).
    hyperdiffusion:
        del^4 coefficient; the classic scale-selective spectral damping.
    """

    transform: SpharmTransform
    omega: float = 7.292e-5
    hyperdiffusion: float = 0.0
    zeta: np.ndarray = field(init=False)
    time: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        self.zeta = np.zeros(self.transform.spectral_shape(), dtype=complex)

    # -- state helpers ------------------------------------------------------

    def set_vorticity_grid(self, grid: np.ndarray) -> None:
        """Initialize from a grid-space relative vorticity field."""
        self.zeta = self.transform.analysis(grid)
        self.zeta[0, 0] = 0.0  # the sphere carries no net vorticity

    def vorticity_grid(self) -> np.ndarray:
        return self.transform.synthesis(self.zeta)

    def streamfunction(self) -> np.ndarray:
        return self.transform.synthesis(
            self.transform.inverse_laplacian(self.zeta)
        )

    def winds(self) -> tuple[np.ndarray, np.ndarray]:
        """(u, v) on the grid from the streamfunction."""
        t = self.transform
        psi = t.inverse_laplacian(self.zeta)
        one_minus_mu2 = (1.0 - t.mu**2)[:, None]
        u = -t.synthesis_mu_derivative(psi) / (t.radius * np.sqrt(one_minus_mu2))
        v = t.synthesis_dlambda(psi) / (
            t.radius * np.sqrt(one_minus_mu2)
        )
        return u, v

    # -- dynamics -----------------------------------------------------------

    def tendency(self, zeta_spec: np.ndarray) -> np.ndarray:
        """Spectral d zeta/dt for a given spectral state."""
        t = self.transform
        a = t.radius
        one_minus_mu2 = (1.0 - t.mu**2)[:, None]

        psi = t.inverse_laplacian(zeta_spec)
        U = -t.synthesis_mu_derivative(psi) / a  # u cos(phi)
        V = t.synthesis_dlambda(psi) / a  # v cos(phi)

        dzeta_dlambda = t.synthesis_dlambda(zeta_spec)
        dzeta_dmu = t.synthesis_mu_derivative(zeta_spec)  # (1-mu^2) d/dmu
        # planetary vorticity gradient: (1-mu^2) d(2 Omega mu)/dmu
        df_dmu = 2.0 * self.omega * (1.0 - t.mu**2)[:, None]

        advection = (
            U * dzeta_dlambda + V * (dzeta_dmu + df_dmu)
        ) / (a * one_minus_mu2)
        out = -t.analysis(advection)
        if self.hyperdiffusion > 0.0:
            eig = t.laplacian_eigenvalues()[:, None]
            out = out - self.hyperdiffusion * (eig * eig) * zeta_spec
        out[0, 0] = 0.0
        return out

    def step(self, dt: float) -> None:
        """One SSP-RK3 step."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        z0 = self.zeta
        k1 = self.tendency(z0)
        z1 = z0 + dt * k1
        k2 = self.tendency(z1)
        z2 = 0.75 * z0 + 0.25 * (z1 + dt * k2)
        k3 = self.tendency(z2)
        self.zeta = z0 / 3.0 + 2.0 / 3.0 * (z2 + dt * k3)
        self.time += dt

    def run(self, steps: int, dt: float) -> None:
        for _ in range(steps):
            self.step(dt)

    # -- diagnostics ---------------------------------------------------------

    def energy(self) -> float:
        """Kinetic energy  -1/2 sum psi* zeta (spectral inner product)."""
        psi = self.transform.inverse_laplacian(self.zeta)
        m = np.arange(self.transform.lmax + 1)
        # negative-m modes are implied: weight m>0 twice
        w = np.where(m == 0, 1.0, 2.0)[None, :]
        return float(
            -0.5 * np.real((np.conj(psi) * self.zeta * w).sum())
        )

    def enstrophy(self) -> float:
        """1/2 sum |zeta_lm|^2 (conserved by the inviscid dynamics)."""
        m = np.arange(self.transform.lmax + 1)
        w = np.where(m == 0, 1.0, 2.0)[None, :]
        return float(0.5 * (np.abs(self.zeta) ** 2 * w).sum())


def rossby_haurwitz_rate(l: int, m: int, omega: float) -> float:
    """Angular phase speed of a Rossby–Haurwitz harmonic (rad/s).

    A single Y_l^m mode on a resting atmosphere retrogresses in
    longitude at ``-2 Omega / (l (l + 1))`` — the classical dispersion
    relation (independent of m), which the Eulerian core reproduces to
    time-integrator accuracy.
    """
    if l < 1 or abs(m) > l or m == 0:
        raise ValueError("need 1 <= |m| <= l")
    return -2.0 * omega / (l * (l + 1.0))


def eulerian_step_work(
    transform: SpharmTransform, name: str = "fvcam.eulerian_step"
) -> Work:
    """Workload of one spectral-transform step (Legendre + FFT heavy).

    Legendre transforms cost ~ nlat * lmax^2 multiply-adds per
    direction per field; the method is famously dense — and famously
    vector-friendly (long unit-stride inner loops), which is why the
    spectral core historically did better on vector machines than the
    finite-volume core's branchy upwind operators.
    """
    nlat, nlon = transform.grid_shape
    L = transform.lmax
    legendre = 2.0 * nlat * (L + 1) * (L + 2)  # one transform
    ffts = 5.0 * nlat * nlon * np.log2(max(nlon, 2))
    # per RK stage: ~6 syntheses/analyses + grid algebra; 3 stages
    flops = 3 * (6 * (legendre + ffts) + 12 * nlat * nlon)
    return Work(
        name=name,
        flops=flops,
        bytes_unit=3 * 8.0 * (L + 1) * (L + 1) * nlat / max(L, 1),
        vector_fraction=0.98,
        avg_vector_length=float(min(256, nlat)),
        fma_fraction=0.95,
        cache_fraction=0.5,
    )
