"""Vertical remapping of the Lagrangian control-volume layers.

"First, the main dynamical equations are time-integrated within the
control volumes bounded by Lagrangian material surfaces.  Second, the
Lagrangian surfaces are re-mapped to physical space based on vertical
transport."  As the layers deform, the remap redistributes each
column's mass (and mass-weighted winds) onto the reference layer
distribution — a strictly columnar, conservative 1-D operation, which
is why the remap phase wants the (longitude, latitude) decomposition.
"""

from __future__ import annotations

import numpy as np

from ...workload import Work
from .grid import LatLonGrid


def remap_column(
    h: np.ndarray, fields: list[np.ndarray]
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Conservatively remap one set of columns to uniform target layers.

    Parameters
    ----------
    h:
        Layer thicknesses, shape (km, ...); all positive.
    fields:
        Mass-weighted quantities (winds, tracers) with h's shape.

    Returns new (h, fields): target layers share the column total
    equally; each field value is the mass-weighted average of the
    overlapped source layers (piecewise-constant reconstruction).
    Column totals of ``h`` and of ``h * field`` are preserved exactly.
    """
    km = h.shape[0]
    if (h <= 0).any():
        raise ValueError("layer thicknesses must be positive")
    flat_h = h.reshape(km, -1)
    ncol = flat_h.shape[1]
    flat_fields = [f.reshape(km, -1) for f in fields]

    src_edges = np.vstack(
        [np.zeros((1, ncol)), np.cumsum(flat_h, axis=0)]
    )  # (km+1, ncol)
    total = src_edges[-1]
    tgt_h = np.repeat(total[None, :] / km, km, axis=0)
    tgt_edges = np.vstack(
        [np.zeros((1, ncol)), np.cumsum(tgt_h, axis=0)]
    )

    new_fields = [np.zeros_like(flat_h) for _ in fields]
    # overlap integral of target layer t with source layer s
    for t in range(km):
        lo_t, hi_t = tgt_edges[t], tgt_edges[t + 1]
        for s in range(km):
            lo_s, hi_s = src_edges[s], src_edges[s + 1]
            overlap = np.minimum(hi_t, hi_s) - np.maximum(lo_t, lo_s)
            overlap = np.maximum(overlap, 0.0)
            for f_new, f_src in zip(new_fields, flat_fields):
                f_new[t] += overlap * f_src[s]
    tgt_mass = tgt_h
    out_fields = [
        (f_new / tgt_mass).reshape(h.shape) for f_new in new_fields
    ]
    return tgt_h.reshape(h.shape), out_fields


def remap_work(
    grid: LatLonGrid, columns_local: int, name: str = "fvcam.remap"
) -> Work:
    """Per-rank Work of remapping ``columns_local`` columns."""
    km = grid.km
    flops = columns_local * (12.0 * km + 8.0 * km)
    return Work(
        name=name,
        flops=max(flops, 1.0),
        bytes_unit=columns_local * km * 8.0 * 6,
        vector_fraction=0.90,
        avg_vector_length=float(min(256, max(1, columns_local))),
        fma_fraction=0.6,
        cache_fraction=0.3,
    )


def transpose_bytes(grid: LatLonGrid, py: int, pz: int) -> float:
    """Per-rank bytes moved by one dynamics->remap transpose.

    Each of the ``pz`` ranks of a column group redistributes its
    (km/pz, jm/py, im) block so that every member ends up with full
    columns over im/pz longitudes: all but 1/pz of the data moves.
    """
    block = (grid.km // pz) * (grid.jm / py) * grid.im * 8.0
    fields = 3  # h, u, v
    return fields * block * (1.0 - 1.0 / pz)
