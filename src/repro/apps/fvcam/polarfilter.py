"""FFT polar filter.

"One area where vectorization proved to be problematic is the
implementation of the polar filters.  These are Fast Fourier Transforms
(FFTs) along complete longitude lines performed at the upper (and
lower) latitudes.  Vectorization is attained across FFTs (with respect
to latitude) as opposed to within the FFT, since the number of FFTs
that can be performed in parallel is critical to vector performance."

At high latitude the converging meridians shrink the physical zonal
grid spacing; the filter damps zonal wavenumbers that would otherwise
force a tiny time step.  The damping factor follows the standard
FV-core form  min(1, (cos(lat) / cos(lat_f)) / s(m))  applied in
Fourier space, with the zonal mean (m = 0) always untouched.
"""

from __future__ import annotations

import numpy as np

from ...workload import Work
from .grid import LatLonGrid


def damping_coefficients(grid: LatLonGrid) -> np.ndarray:
    """Per-(filtered-row, wavenumber) damping factors in [0, 1].

    Shape (len(filtered_rows), im//2 + 1); row order matches
    ``grid.filtered_rows``.  The m = 0 component is always 1.
    """
    rows = grid.filtered_rows
    m = np.arange(grid.im // 2 + 1)
    cos_f = np.cos(np.deg2rad(grid.filter_lat_deg))
    coefs = np.ones((len(rows), len(m)))
    with np.errstate(divide="ignore"):
        shape_m = np.sin(0.5 * m * grid.dlon) * grid.im / np.pi
    for k, j in enumerate(rows):
        ratio = np.cos(grid.latitudes[j]) / cos_f
        damp = np.ones_like(shape_m)
        nz = shape_m > 0
        damp[nz] = np.minimum(1.0, ratio / shape_m[nz])
        coefs[k] = damp
    coefs[:, 0] = 1.0
    return coefs


def apply_polar_filter(
    grid: LatLonGrid, field: np.ndarray, coefs: np.ndarray | None = None
) -> np.ndarray:
    """Filter a (..., jm, im) field's polar rows in place-free fashion.

    FFT along longitude for every filtered latitude row; multiply the
    spectrum by the damping factors; inverse FFT.  Rows equatorward of
    the filter latitude are returned unchanged.
    """
    if field.shape[-1] != grid.im or field.shape[-2] != grid.jm:
        raise ValueError("field does not match the grid")
    if coefs is None:
        coefs = damping_coefficients(grid)
    rows = grid.filtered_rows
    out = field.copy()
    if len(rows) == 0:
        return out
    spectrum = np.fft.rfft(field[..., rows, :], axis=-1)
    spectrum *= coefs
    out[..., rows, :] = np.fft.irfft(spectrum, n=grid.im, axis=-1)
    return out


def filter_work(
    grid: LatLonGrid,
    rows_local: int,
    fields: int = 3,
    name: str = "fvcam.polar_filter",
) -> Work:
    """Per-rank Work of filtering ``rows_local`` latitude rows.

    The batch width — FFTs running in parallel across latitudes — *is*
    the vector length: "finer domain decompositions also imply
    decreasing numbers of latitude lines assigned to each subdomain,
    thereby restricting performance of the vectorized FFT.  No
    workaround for this issue is apparent."
    """
    n = grid.im
    flops = fields * rows_local * (2 * 5.0 * n * np.log2(max(n, 2)) + 4 * n)
    return Work(
        name=name,
        flops=max(flops, 1.0),
        bytes_unit=fields * rows_local * n * 8.0 * 4,
        vector_fraction=0.90,
        avg_vector_length=float(max(1, min(256, rows_local))),
        fma_fraction=0.7,
        cache_fraction=0.5,
    )
