"""Stand-in physics package: independent column processes.

The real CAM physics package (radiation, clouds, boundary layer) is a
per-column computation with no horizontal dependencies — which is why
the paper's tuning options include "computational load balancing in the
physics package" but no extra communication beyond it.  The mini-app
relaxes each column toward a reference state (Newtonian cooling) and a
weak wind drag, preserving that embarrassingly parallel structure with
a representative arithmetic cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...workload import Work
from .grid import LatLonGrid


@dataclass(frozen=True)
class PhysicsParams:
    """Relaxation constants of the column physics."""

    tau_thermal: float = 86_400.0
    tau_drag: float = 345_600.0

    def __post_init__(self) -> None:
        if self.tau_thermal <= 0 or self.tau_drag <= 0:
            raise ValueError("relaxation times must be positive")


def apply_physics(
    h: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    h_ref: np.ndarray,
    dt: float,
    params: PhysicsParams,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One physics step; returns new (h, u, v).

    Thermal relaxation redistributes mass within each column toward
    the reference profile without changing the column total (the
    increment is de-meaned vertically), so dynamics conservation
    properties survive the physics.
    """
    dh = (h_ref - h) * (dt / params.tau_thermal)
    dh -= dh.mean(axis=0, keepdims=True)
    damp = 1.0 - dt / params.tau_drag
    return h + dh, u * damp, v * damp


def physics_work(
    grid: LatLonGrid, points_local: int, name: str = "fvcam.physics"
) -> Work:
    """Per-rank Work of one physics step.

    Real CAM physics is expensive (~half the time step) and, after the
    vector port, runs at good vector lengths when columns are blocked;
    the cost constant reflects a radiation + moist-physics column load.
    """
    return Work(
        name=name,
        flops=220.0 * points_local,
        bytes_unit=10 * 8.0 * points_local,
        vector_fraction=0.95,
        avg_vector_length=float(min(256, grid.im)),
        fma_fraction=0.65,
        cache_fraction=0.4,
    )
