"""One-dimensional flux-form finite-volume transport operators.

The Lin–Rood dynamical core advances its prognostic fields with
directionally split, one-sided (upwind) flux-form operators of PPM
type — "the finite-volume scheme is fundamentally one-sided (upwind)
and higher order, causing a significant number of nested logical
branches", the property that made FVCAM hard to vectorize.

Provided operators (all conservative by construction — the update is a
flux difference):

* :func:`upwind_flux` — first-order donor cell;
* :func:`vanleer_flux` — second-order van Leer (MUSCL) with monotonic
  slope limiting, the workhorse used by the dycore;
* :func:`advect` — one split update given face fluxes.

Boundary handling: ``periodic=True`` wraps (longitude); otherwise the
boundary faces carry zero flux (the latitude walls of the capped mesh).
"""

from __future__ import annotations

import numpy as np


def _shift(q: np.ndarray, n: int, periodic: bool, axis: int = -1) -> np.ndarray:
    out = np.roll(q, n, axis=axis)
    if not periodic:
        # clamp: replicate edge values into the wrapped slots
        idx = [slice(None)] * q.ndim
        if n > 0:
            idx[axis] = slice(0, n)
            edge = [slice(None)] * q.ndim
            edge[axis] = slice(n, n + 1)
            out[tuple(idx)] = out[tuple(edge)]
        elif n < 0:
            idx[axis] = slice(q.shape[axis] + n, None)
            edge = [slice(None)] * q.ndim
            edge[axis] = slice(q.shape[axis] + n - 1, q.shape[axis] + n)
            out[tuple(idx)] = out[tuple(edge)]
    return out


def upwind_flux(
    q: np.ndarray, courant: np.ndarray, periodic: bool = True, axis: int = -1
) -> np.ndarray:
    """Donor-cell face fluxes.

    ``courant[..., i]`` is the signed Courant number at face ``i`` —
    the face between cells ``i-1`` and ``i``.  Returns fluxes with the
    same shape; flux at face i = c * q_upwind.
    """
    q_left = _shift(q, 1, periodic, axis)
    flux = np.where(courant >= 0.0, courant * q_left, courant * q)
    if not periodic:
        idx = [slice(None)] * q.ndim
        idx[axis] = slice(0, 1)
        flux[tuple(idx)] = 0.0
    return flux


def _limited_slope(q: np.ndarray, periodic: bool, axis: int) -> np.ndarray:
    """Monotonized central-difference slope (van Leer limiter)."""
    qm = _shift(q, 1, periodic, axis)
    qp = _shift(q, -1, periodic, axis)
    d_center = 0.5 * (qp - qm)
    d_min = 2.0 * (q - np.minimum(np.minimum(qm, q), qp))
    d_max = 2.0 * (np.maximum(np.maximum(qm, q), qp) - q)
    return np.sign(d_center) * np.minimum(
        np.abs(d_center), np.minimum(d_min, d_max)
    )


def vanleer_flux(
    q: np.ndarray, courant: np.ndarray, periodic: bool = True, axis: int = -1
) -> np.ndarray:
    """Second-order van Leer face fluxes with monotonic limiting.

    Reduces to :func:`upwind_flux` wherever the limited slope vanishes
    (local extrema), and preserves constants exactly.
    """
    slope = _limited_slope(q, periodic, axis)
    q_left = _shift(q, 1, periodic, axis)
    slope_left = _shift(slope, 1, periodic, axis)
    c = courant
    flux_pos = c * (q_left + 0.5 * slope_left * (1.0 - c))
    flux_neg = c * (q - 0.5 * slope * (1.0 + c))
    flux = np.where(c >= 0.0, flux_pos, flux_neg)
    if not periodic:
        idx = [slice(None)] * q.ndim
        idx[axis] = slice(0, 1)
        flux[tuple(idx)] = 0.0
    return flux


def advect(
    q: np.ndarray, flux: np.ndarray, periodic: bool = True, axis: int = -1
) -> np.ndarray:
    """Conservative update  q_new = q - (F_{i+1} - F_i).

    The face-i flux array holds the flux *into* cell i from the left;
    the outflow face of cell i is face i+1 (wrapped or zero).
    """
    flux_out = _shift(flux, -1, periodic, axis)
    if not periodic:
        idx = [slice(None)] * q.ndim
        idx[axis] = slice(q.shape[axis] - 1, None)
        flux_out[tuple(idx)] = 0.0
    return q - (flux_out - flux)


def advect_vanleer(
    q: np.ndarray, courant: np.ndarray, periodic: bool = True, axis: int = -1
) -> np.ndarray:
    """Convenience: one full van Leer transport step along an axis."""
    return advect(
        q, vanleer_flux(q, courant, periodic, axis), periodic, axis
    )
