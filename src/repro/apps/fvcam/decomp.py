"""FVCAM's 1-D and 2-D domain decompositions.

Dynamics runs in a (latitude, level) decomposition — "a two-dimensional
domain decomposition in (latitude, level) is employed throughout most
of the dynamics phase", the pole singularity making longitudinal
splits unattractive.  The remapping phase wants whole vertical columns
and runs in a (longitude, latitude) decomposition; "the two domain
decompositions are connected by transposes".

Rank layout: ``rank = z * py + y`` — latitude-major within each level
block, which is what makes Figure 2(b)'s diagonal segments of length
``py`` and its vertical-communication lines at offsets of ``py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...simmpi.comm import Communicator
from .grid import LatLonGrid


@dataclass(frozen=True)
class FVDecomposition:
    """(latitude, level) processor mesh: ``nprocs = py * pz``.

    ``pz = 1`` gives the 1-D latitude-only decomposition.  The paper's
    2-D runs use ``pz`` of 4 or 7 ("these have been found empirically
    to be reasonable choices across all of the target platforms").
    """

    grid: LatLonGrid
    py: int
    pz: int = 1

    #: FVCAM "does not allow less than three latitude lines per
    #: subdomain because of tautologies in the latitudinal subdomain
    #: communication".
    MIN_LATS = 3

    def __post_init__(self) -> None:
        if self.py < 1 or self.pz < 1:
            raise ValueError("processor mesh factors must be >= 1")
        if self.grid.jm // self.py < self.MIN_LATS:
            raise ValueError(
                f"fewer than {self.MIN_LATS} latitudes per subdomain "
                f"(jm={self.grid.jm}, py={self.py})"
            )
        if self.grid.km % self.pz != 0:
            raise ValueError("km must be divisible by pz")

    @property
    def nprocs(self) -> int:
        return self.py * self.pz

    def coords(self, rank: int) -> tuple[int, int]:
        """(y, z) processor coordinates of a rank."""
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"rank {rank} out of range")
        return rank % self.py, rank // self.py

    def rank_of(self, y: int, z: int) -> int:
        return (z % self.pz) * self.py + (y % self.py)

    def lat_slice(self, rank: int) -> slice:
        """Latitude rows owned by a rank (block distribution)."""
        y, _ = self.coords(rank)
        bounds = np.linspace(0, self.grid.jm, self.py + 1).astype(int)
        return slice(int(bounds[y]), int(bounds[y + 1]))

    def level_slice(self, rank: int) -> slice:
        _, z = self.coords(rank)
        kloc = self.grid.km // self.pz
        return slice(z * kloc, (z + 1) * kloc)

    def local_shape(self, rank: int) -> tuple[int, int, int]:
        ls, ks = self.lat_slice(rank), self.level_slice(rank)
        return (
            ks.stop - ks.start,
            ls.stop - ls.start,
            self.grid.im,
        )

    def lat_neighbors(self, rank: int) -> tuple[int | None, int | None]:
        """(south, north) ranks, ``None`` at the wall boundaries."""
        y, z = self.coords(rank)
        south = self.rank_of(y - 1, z) if y > 0 else None
        north = self.rank_of(y + 1, z) if y < self.py - 1 else None
        return south, north

    def level_group(self, rank: int) -> list[int]:
        """All ranks sharing this rank's latitude band (the z-column)."""
        y, _ = self.coords(rank)
        return [self.rank_of(y, z) for z in range(self.pz)]

    def level_group_colors(self) -> list[int]:
        """Colors for ``Communicator.split`` into z-column subgroups."""
        return [self.coords(r)[0] for r in range(self.nprocs)]

    def scatter(self, global_field: np.ndarray) -> list[np.ndarray]:
        """Split a (km, jm, im) global array into per-rank blocks."""
        if global_field.shape != self.grid.shape:
            raise ValueError("field does not match the grid")
        return [
            np.ascontiguousarray(
                global_field[self.level_slice(r), self.lat_slice(r), :]
            )
            for r in range(self.nprocs)
        ]

    def gather(self, locals_: list[np.ndarray]) -> np.ndarray:
        """Assemble per-rank blocks back into a (km, jm, im) array."""
        if len(locals_) != self.nprocs:
            raise ValueError("need one block per rank")
        out = np.empty(self.grid.shape, dtype=locals_[0].dtype)
        for r, block in enumerate(locals_):
            out[self.level_slice(r), self.lat_slice(r), :] = block
        return out

    def make_level_groups(self, comm: Communicator) -> list[Communicator]:
        """One subcommunicator per z-column (vertical sums, transposes)."""
        if comm.nprocs != self.nprocs:
            raise ValueError("communicator size mismatch")
        return comm.split(self.level_group_colors())
