"""Shallow-atmosphere finite-volume dynamics (the Lin–Rood dycore skeleton).

Prognostics per layer k: thickness ``h`` (mass), winds ``u``, ``v``.
The update follows the flux-form, directionally split scheme:

* zonal and meridional van Leer transport of the area-weighted mass
  ``H = h cos(lat)`` — conserving total mass to round-off;
* momentum advection with the same operators;
* hydrostatic pressure-gradient acceleration from the geopotential
  ``Phi_k = g * sum_{k' >= k} h_{k'}`` — the *vertical* coupling that
  gives the 2-D decomposition its level-direction communication;
* FFT polar filtering of the wind increments at high latitude.

All functions here operate on (nlev, nlat, nlon) arrays with however
many ghost latitude rows the caller provides; the solver owns halo
exchange and cropping.  Array axis order: (k, j, i) = (level, lat, lon).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...workload import Work
from .grid import LatLonGrid
from .ppm import advect, vanleer_flux

#: Ghost latitude rows required by the van Leer stencil (slope +- 1,
#: upstream slope one more).
HALO = 2


@dataclass(frozen=True)
class DynamicsParams:
    """Time step and physical constants for the dynamics phase."""

    dt: float = 60.0
    drag: float = 1e-5

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")


def courant_lon(
    grid: LatLonGrid, u: np.ndarray, coslat: np.ndarray, dt: float
) -> np.ndarray:
    """Zonal Courant numbers at west faces, shape like u."""
    u_face = 0.5 * (u + np.roll(u, 1, axis=-1))
    return u_face * dt / (grid.radius * coslat[None, :, None] * grid.dlon)


def courant_lat(grid: LatLonGrid, v: np.ndarray, dt: float) -> np.ndarray:
    """Meridional Courant numbers at south faces, shape like v."""
    v_face = 0.5 * (v + np.roll(v, 1, axis=-2))
    return v_face * dt / (grid.radius * grid.dlat)


def transport_2d(
    grid: LatLonGrid,
    q: np.ndarray,
    cu: np.ndarray,
    cv: np.ndarray,
) -> np.ndarray:
    """Directionally split conservative transport of one field.

    Zonal sweep (periodic) followed by meridional sweep (walls).  The
    meridional boundary faces carry zero flux, so the global sum of
    ``q`` is invariant (tests check to round-off).
    """
    q1 = advect(q, vanleer_flux(q, cu, periodic=True, axis=-1), True, -1)
    q2 = advect(
        q1, vanleer_flux(q1, cv, periodic=False, axis=-2), False, -2
    )
    return q2


def geopotential(h: np.ndarray, gravity: float) -> np.ndarray:
    """Phi_k = g * (h_k + h_{k+1} + ... + h_{K}) — hydrostatic stack.

    Level index 0 is the model top; the suffix sum couples each level
    to everything beneath it.
    """
    return gravity * np.cumsum(h[::-1], axis=0)[::-1]


def pressure_gradient(
    grid: LatLonGrid,
    phi: np.ndarray,
    coslat: np.ndarray,
    dt: float,
) -> tuple[np.ndarray, np.ndarray]:
    """(du, dv) increments from -grad(Phi), centered differences."""
    dphi_lon = (np.roll(phi, -1, axis=-1) - np.roll(phi, 1, axis=-1)) / (
        2.0 * grid.dlon
    )
    du = -dt * dphi_lon / (grid.radius * coslat[None, :, None])

    dphi_lat = np.empty_like(phi)
    dphi_lat[:, 1:-1, :] = (phi[:, 2:, :] - phi[:, :-2, :]) / (2.0 * grid.dlat)
    dphi_lat[:, 0, :] = (phi[:, 1, :] - phi[:, 0, :]) / grid.dlat
    dphi_lat[:, -1, :] = (phi[:, -1, :] - phi[:, -2, :]) / grid.dlat
    dv = -dt * dphi_lat / grid.radius
    return du, dv


def dynamics_work(
    grid: LatLonGrid, points_local: int, name: str = "fvcam.dynamics"
) -> Work:
    """Per-rank Work of one dynamics step over ``points_local`` cells.

    The one-sided upwind scheme's "significant number of nested logical
    branches" shows up as a reduced vectorizable fraction (the paper's
    vector port moved the tests out of the loops with indirect
    indexing) and a small gather component for that indirect indexing.
    """
    flops_per_point = 160.0
    return Work(
        name=name,
        flops=flops_per_point * points_local,
        bytes_unit=14 * 8.0 * points_local * 2,
        scalar_bytes_unit=14 * 8.0 * points_local * 5,
        bytes_gather=2 * 8.0 * points_local,
        gather_cache_fraction=0.6,
        vector_fraction=0.93,
        avg_vector_length=float(min(256, grid.im)),
        fma_fraction=0.55,
        cache_fraction=0.15,
    )
