"""GTC's two-level processor decomposition.

Level 1: the classic 1-D toroidal domain decomposition — ``ntoroidal``
domains, fixed at 64 in the paper by the quasi-2D field-aligned physics
("increasing the number of grid points in the toroidal direction does
not change the results of the simulation").

Level 2: the paper's contribution — the *particle decomposition*:
``npe_per_domain`` ranks share each domain's particles, communicating
the deposited charge with an ``Allreduce`` over the domain subgroup.
This is what broke GTC's 64-way ceiling and scaled it to 2048 MPI
processes / 3.7 Tflop/s on the ES.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...simmpi.comm import Communicator


@dataclass(frozen=True)
class GTCDecomposition:
    """Rank layout: ``nprocs = ntoroidal * npe_per_domain``.

    Rank ``r`` owns toroidal domain ``r // npe_per_domain`` and carries
    particle-split index ``r % npe_per_domain`` within it.
    """

    ntoroidal: int
    npe_per_domain: int

    def __post_init__(self) -> None:
        if self.ntoroidal < 1 or self.npe_per_domain < 1:
            raise ValueError("decomposition factors must be >= 1")

    @property
    def nprocs(self) -> int:
        return self.ntoroidal * self.npe_per_domain

    def domain_of(self, rank: int) -> int:
        self._check(rank)
        return rank // self.npe_per_domain

    def split_of(self, rank: int) -> int:
        self._check(rank)
        return rank % self.npe_per_domain

    def rank_of(self, domain: int, split: int) -> int:
        return (domain % self.ntoroidal) * self.npe_per_domain + split

    def shift_neighbors(self, rank: int) -> tuple[int, int]:
        """(left, right) partner ranks for the toroidal particle shift.

        Partners carry the same particle-split index in the adjacent
        domains, so shift traffic stays balanced across the subgroup.
        """
        d, s = self.domain_of(rank), self.split_of(rank)
        return (
            self.rank_of((d - 1) % self.ntoroidal, s),
            self.rank_of((d + 1) % self.ntoroidal, s),
        )

    def domain_colors(self) -> list[int]:
        """Color array for ``Communicator.split`` into domain subgroups."""
        return [self.domain_of(r) for r in range(self.nprocs)]

    def make_subgroups(self, comm: Communicator) -> list[Communicator]:
        """One subcommunicator per toroidal domain (charge Allreduce)."""
        if comm.nprocs != self.nprocs:
            raise ValueError(
                f"communicator has {comm.nprocs} ranks, decomposition "
                f"needs {self.nprocs}"
            )
        return comm.split(self.domain_colors())

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"rank {rank} out of range ({self.nprocs})")


def choose_decomposition(
    nprocs: int, max_toroidal: int = 64
) -> GTCDecomposition:
    """Pick (ntoroidal, npe_per_domain) for a processor count.

    Mirrors the paper's experiments: fill the toroidal dimension first
    (up to its physics-fixed 64-domain limit), then grow the particle
    decomposition.  ``nprocs`` must be divisible accordingly.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    ntor = 1
    for cand in range(min(nprocs, max_toroidal), 0, -1):
        if nprocs % cand == 0:
            ntor = cand
            break
    return GTCDecomposition(ntoroidal=ntor, npe_per_domain=nprocs // ntor)
