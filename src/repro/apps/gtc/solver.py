"""GTC driver: gyrokinetic PIC with the paper's particle decomposition.

One time step, per rank (SPMD over the simulated communicator):

1. *charge*   — deposit the rank's particle slice onto its private copy
   of the domain grid (work-vector method on vector machines);
2. *reduce*   — ``Allreduce`` the charge over the domain's particle
   subgroup (the communication the new decomposition introduced);
3. *field*    — Poisson solve + E = -grad(phi) (replicated per rank);
4. *push*     — gather E at particles, advance the guiding centers;
5. *shift*    — exchange domain-crossing particles with zeta neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from types import SimpleNamespace

import numpy as np

from ...kernels import KernelBackend, get_backend
from ...runtime.arena import Arena
from ...simmpi.comm import Communicator
from .decomp import GTCDecomposition, choose_decomposition
from .deposit import DEFAULT_WORK_VECTOR_COPIES, deposit_work
from .grid import PoloidalGrid, TorusGrid
from .particles import (
    DEFAULT_SPECIES,
    PARTICLE_FIELDS,
    ParticleArray,
    Species,
    load_multispecies,
    split_particles,
)
from .poisson import electric_field, poisson_work, solve_poisson
from .push import PushParams, push_work
from .shift import shift_particles


@dataclass(frozen=True)
class GTCParams:
    """Configuration of a GTC run.

    ``particles_per_cell`` follows the paper's scaling rows (100 at
    P=64 up to 3200 at P=2048, holding ~3.2M particles per processor on
    the full-size grid).
    """

    mpsi: int = 16
    mtheta: int = 32
    ntoroidal: int = 4
    particles_per_cell: int = 10
    dt: float = 0.01
    thermal_velocity: float = 1.0
    use_work_vector: bool = False
    work_vector_copies: int = 8
    seed: int = 7
    species: tuple[Species, ...] = DEFAULT_SPECIES

    def make_torus(self) -> TorusGrid:
        return TorusGrid(
            plane=PoloidalGrid(mpsi=self.mpsi, mtheta=self.mtheta),
            ntoroidal=self.ntoroidal,
        )

    @property
    def particles_per_domain(self) -> int:
        return self.particles_per_cell * self.mpsi * self.mtheta


# -- rank segments -----------------------------------------------------
#
# Module-level ``(rank, shm, args)`` callables (docs/executors.md):
# bound per region with ``functools.partial``; every segment returns
# its result so forked workers marshal effects home instead of
# mutating parent memory they cannot reach.


def _deposit_segment(rank: int, shm, args) -> np.ndarray:
    """Deposit one rank's particles; returns the unreduced partial.

    The accumulation buffer is drawn from the rank's child arena so
    concurrent segments never alias — the partials must all survive
    until the subgroup Allreduce that follows the region.
    """
    p = args.particles[rank]
    dest = (
        shm.for_rank(rank).scratch("gtc.charge.partial", args.grid.shape)
        if shm is not None
        else None
    )
    if args.vectorized:
        rho = args.kernels.gtc_deposit_work_vector(
            args.grid, p, args.copies, out=dest
        )
    else:
        rho = args.kernels.gtc_deposit_scalar(args.grid, p, out=dest)
    args.comm.compute(rank, deposit_work(len(p), args.vectorized))
    return rho


def _field_segment(domain: int, shm, args) -> list:
    """Poisson solve + E-field for one toroidal domain's ranks.

    One segment per domain, not per rank: in arena mode the ranks of a
    domain share the solve result (their reduced charges are bitwise
    equal), so the domain is the independent unit of work.  Ranks are
    walked in ascending order, so the deferred compute charges replay
    exactly as the serial per-rank loop charged them.  Returns one
    ``(phi, (e_r, e_theta))`` entry per rank.
    """
    lo = domain * args.npe
    out: list[tuple[np.ndarray, tuple]] = []
    fields: tuple[np.ndarray, tuple] | None = None
    for rank in range(lo, lo + args.npe):
        if not args.share or fields is None:
            rho = args.charge[rank]
            phi = solve_poisson(args.grid, rho - rho.mean())
            fields = (phi, electric_field(args.grid, phi))
        out.append(fields)
        args.comm.compute(rank, args.work)
    return out


def _push_out(shm, rank: int, n: int, parity: int) -> ParticleArray | None:
    """Arena-backed destination particles for the push ping-pong.

    Keys alternate on step parity so the buffers being written never
    alias the (previous step's) particles being read.
    """
    if shm is None:
        return None
    tag = f"gtc.push.{parity}"
    sc = shm.for_rank(rank).scratch
    return ParticleArray(
        r=sc(tag + ".r", (n,)),
        theta=sc(tag + ".theta", (n,)),
        zeta=sc(tag + ".zeta", (n,)),
        vpar=sc(tag + ".vpar", (n,)),
        weight=sc(tag + ".weight", (n,)),
        species=sc(tag + ".species", (n,)),
    )


def _push_segment(rank: int, shm, args) -> ParticleArray:
    """Gather E at one rank's particles and advance them; returns the
    pushed particles."""
    p = args.particles[rank]
    # e_fields may be shared between the ranks of a domain in arena
    # mode — segments only read them.
    e_r, e_theta = args.e_fields[rank]
    er_p, et_p = args.kernels.gtc_gather_field(args.grid, e_r, e_theta, p)
    new = args.kernels.gtc_push_particles(
        args.torus,
        p,
        er_p,
        et_p,
        args.push_params,
        out=_push_out(shm, rank, len(p), args.parity),
    )
    args.comm.compute(rank, push_work(len(p), args.vectorized))
    return new


class GTC:
    """Parallel GTC simulation over a simulated communicator."""

    app_key = "gtc"
    #: IPM phase labels of one step, in the paper's order.
    phases = ("charge", "reduce", "field", "push", "shift")

    def __init__(
        self,
        params: GTCParams,
        comm: Communicator,
        arena: Arena | None = None,
        kernels: "str | KernelBackend | None" = None,
    ) -> None:
        self.params = params
        self.comm = comm
        self.arena = arena
        self.kernels = get_backend(kernels)
        if comm.nprocs % params.ntoroidal != 0:
            raise ValueError(
                f"nprocs ({comm.nprocs}) must be a multiple of "
                f"ntoroidal ({params.ntoroidal})"
            )
        self.decomp = GTCDecomposition(
            ntoroidal=params.ntoroidal,
            npe_per_domain=comm.nprocs // params.ntoroidal,
        )
        self.torus = params.make_torus()
        self.push_params = PushParams(dt=params.dt)
        self.subgroups = self.decomp.make_subgroups(comm)

        rng = np.random.default_rng(params.seed)
        self.particles: list[ParticleArray] = []
        for domain in range(params.ntoroidal):
            pool = load_multispecies(
                self.torus,
                params.particles_per_domain,
                domain,
                rng,
                params.species,
            )
            self.particles.extend(
                split_particles(pool, self.decomp.npe_per_domain)
            )
        self.charge: list[np.ndarray] = [
            self.torus.plane.zeros() for _ in range(comm.nprocs)
        ]
        self.phi: list[np.ndarray] = [
            self.torus.plane.zeros() for _ in range(comm.nprocs)
        ]
        self.step_count = 0

    # -- phases -----------------------------------------------------------

    def charge_phase(self) -> None:
        """Deposit + subgroup Allreduce (phases 1 and 2)."""
        with self.comm.phase("charge"):
            partial = self._deposit()
        with self.comm.phase("reduce"):
            self._reduce_charge(partial)

    def _deposit(self) -> list[np.ndarray]:
        """Per-rank charge deposition; returns the unreduced partials."""
        args = SimpleNamespace(
            comm=self.comm,
            grid=self.torus.plane,
            particles=self.particles,
            vectorized=self.params.use_work_vector,
            copies=self.params.work_vector_copies,
            kernels=self.kernels,
        )
        return self.comm.map_ranks(
            partial(_deposit_segment, shm=self.arena, args=args)
        )

    def _reduce_charge(self, partial: list[np.ndarray]) -> None:
        """Subgroup Allreduce of the deposited partials."""
        for domain, sub in enumerate(self.subgroups):
            lo = domain * self.decomp.npe_per_domain
            hi = lo + self.decomp.npe_per_domain
            reduced = sub.allreduce(partial[lo:hi])
            for k, rank in enumerate(range(lo, hi)):
                self.charge[rank] = reduced[k]

    def field_phase(self) -> None:
        """Poisson solve and E-field, replicated per rank (phase 3).

        With an arena the replicated solve is computed once per
        toroidal domain: after the subgroup Allreduce every rank of a
        domain holds the same charge bitwise, so the per-rank solves
        are identical by construction and the fast path shares the
        (read-only) results.  Virtual time is still charged per rank —
        each simulated processor does the work.
        """
        grid = self.torus.plane
        npe = self.decomp.npe_per_domain
        args = SimpleNamespace(
            comm=self.comm,
            grid=grid,
            npe=npe,
            work=poisson_work(grid),
            charge=self.charge,
            share=self.arena is not None,
        )
        per_domain = self.comm.map_ranks(
            partial(_field_segment, shm=self.arena, args=args),
            indices=range(self.decomp.ntoroidal),
        )
        self.e_fields = []
        for domain, fields_list in enumerate(per_domain):
            lo = domain * npe
            for k, fields in enumerate(fields_list):
                self.phi[lo + k] = fields[0]
                self.e_fields.append(fields[1])

    def push_phase(self) -> None:
        """Gather + guiding-center advance (phase 4)."""
        args = SimpleNamespace(
            comm=self.comm,
            grid=self.torus.plane,
            torus=self.torus,
            particles=self.particles,
            e_fields=self.e_fields,
            push_params=self.push_params,
            parity=self.step_count % 2,
            vectorized=self.params.use_work_vector,
            kernels=self.kernels,
        )
        self.particles = self.comm.map_ranks(
            partial(_push_segment, shm=self.arena, args=args)
        )

    def _push_buffers(self, rank: int, n: int) -> ParticleArray | None:
        """Back-compat shim over :func:`_push_out` (same ping-pong)."""
        return _push_out(self.arena, rank, n, self.step_count % 2)

    def shift_phase(self) -> None:
        """Toroidal particle exchange (phase 5)."""
        if self.decomp.ntoroidal == 1:
            for rank, p in enumerate(self.particles):
                self.particles[rank] = ParticleArray(
                    r=p.r,
                    theta=p.theta,
                    zeta=np.mod(p.zeta, 2.0 * np.pi),
                    vpar=p.vpar,
                    weight=p.weight,
                    species=p.species,
                )
            return
        rank_domain = [
            self.decomp.domain_of(r) for r in range(self.comm.nprocs)
        ]
        rank_neighbors = [
            self.decomp.shift_neighbors(r) for r in range(self.comm.nprocs)
        ]
        self.particles = shift_particles(
            self.comm, self.torus, rank_domain, rank_neighbors, self.particles
        )

    def step(self) -> None:
        self.charge_phase()
        with self.comm.phase("field"):
            self.field_phase()
        with self.comm.phase("push"):
            self.push_phase()
        with self.comm.phase("shift"):
            self.shift_phase()
        self.step_count += 1

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    # -- checkpoint/restart ------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Snapshot particles + fields (``repro.resilience.Checkpointable``).

        ``step_count`` rides along because the push phase ping-pongs
        arena buffers on its parity; E-fields are derived each step and
        recomputed on replay.
        """
        return {
            "step_count": self.step_count,
            "particles": [
                {
                    name: np.array(getattr(p, name), copy=True)
                    for name in PARTICLE_FIELDS
                }
                for p in self.particles
            ],
            "charge": [np.array(c, copy=True) for c in self.charge],
            "phi": [np.array(f, copy=True) for f in self.phi],
        }

    def restore_state(self, snapshot: dict) -> None:
        if len(snapshot["charge"]) != self.comm.nprocs:
            raise ValueError("checkpoint rank count mismatch")
        self.particles = [
            ParticleArray(
                **{k: np.array(v, copy=True) for k, v in d.items()}
            )
            for d in snapshot["particles"]
        ]
        self.charge = [np.array(c, copy=True) for c in snapshot["charge"]]
        self.phi = [np.array(f, copy=True) for f in snapshot["phi"]]
        self.step_count = int(snapshot["step_count"])

    # -- observation ------------------------------------------------------

    def total_particles(self) -> int:
        return sum(len(p) for p in self.particles)

    def total_charge(self) -> float:
        return float(sum(p.total_charge for p in self.particles))

    def domain_charge(self, domain: int) -> np.ndarray:
        """The reduced charge grid of one toroidal domain."""
        rank = self.decomp.rank_of(domain, 0)
        return self.charge[rank].copy()

    def species_census(self) -> dict[str, dict[str, float]]:
        """Per-species particle counts and net deposited charge."""
        out: dict[str, dict[str, float]] = {}
        for index, spec in enumerate(self.params.species):
            count = sum(p.species_count(index) for p in self.particles)
            charge = sum(p.species_charge(index) for p in self.particles)
            out[spec.name] = {"count": float(count), "charge": charge}
        return out

    @property
    def flops_per_step(self) -> float:
        """Total useful flops of one step across all ranks."""
        total = 0.0
        vec = self.params.use_work_vector
        for p in self.particles:
            total += deposit_work(len(p), vec).flops
            total += push_work(len(p), vec).flops
        total += self.comm.nprocs * poisson_work(self.torus.plane).flops
        return total
