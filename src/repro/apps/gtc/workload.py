"""Paper-scale performance prediction for GTC (Table 4).

The paper's scaling experiment holds the device grid fixed (64 toroidal
domains x ~32K-point poloidal planes) and grows the particle count with
the processor count, "so as to maintain the same number of particles
per processor, where each processor follows about 3.2 million
particles".  The particle decomposition supplies the concurrency beyond
64: ``npe_per_domain = P / 64`` ranks share each domain, paying one
charge-grid ``Allreduce`` per step over their subgroup — "as the number
of processors involved in this decomposition increases, the overhead
due to these reduction operations increases as well".
"""

from __future__ import annotations

from dataclasses import dataclass

from ...machines.catalog import get_machine
from ...machines.processor import make_model
from ...machines.spec import MachineSpec
from ...network.collectives import CollectiveModel
from ...network.model import NetworkModel
from ...perfmodel.efficiency import get_calibration
from ...perfmodel.report import PerfResult
from ...workload import combine
from .deposit import deposit_work
from .grid import PoloidalGrid
from .poisson import poisson_work
from .push import push_work

#: The production run geometry behind Table 4.
PAPER_NTOROIDAL = 64
PAPER_PLANE = PoloidalGrid(mpsi=192, mtheta=168, r0=0.1, r1=1.0)  # ~32K pts
PARTICLES_PER_PROC = 3_200_000

#: Fraction of particles crossing a domain boundary per step.
SHIFT_FRACTION = 0.05


@dataclass(frozen=True)
class GTCScenario:
    """One Table 4 row: concurrency plus particles-per-cell label."""

    nprocs: int
    particles_per_cell: int

    @property
    def npe_per_domain(self) -> int:
        return max(1, self.nprocs // PAPER_NTOROIDAL)

    @property
    def label(self) -> str:
        return f"{self.particles_per_cell}/cell"


#: Concurrency/particles-per-cell pairs of Table 4.
TABLE4_ROWS: tuple[GTCScenario, ...] = (
    GTCScenario(64, 100),
    GTCScenario(128, 200),
    GTCScenario(256, 400),
    GTCScenario(512, 800),
    GTCScenario(1024, 1600),
    GTCScenario(2048, 3200),
)


def rank_work(spec: MachineSpec):
    """Per-step compute Work of one rank (3.2M particles + field solve)."""
    vectorized = spec.kind.value == "vector"
    works = [
        deposit_work(PARTICLES_PER_PROC, vectorized),
        push_work(PARTICLES_PER_PROC, vectorized),
        poisson_work(PAPER_PLANE),
    ]
    return combine(works, name="gtc.step")


def kernel_works(spec: MachineSpec, scenario: GTCScenario) -> dict:
    """Named per-rank compute kernels of one step (for breakdowns)."""
    vectorized = spec.kind.value == "vector"
    return {
        "charge deposition": deposit_work(PARTICLES_PER_PROC, vectorized),
        "gather + push": push_work(PARTICLES_PER_PROC, vectorized),
        "poisson solve": poisson_work(PAPER_PLANE),
    }


def comm_times(spec: MachineSpec, scenario: GTCScenario) -> dict:
    """Named per-rank communication costs of one step."""
    net = NetworkModel(spec, scenario.nprocs)
    coll = CollectiveModel(net)
    grid_bytes = PAPER_PLANE.num_points * 8.0
    shift_bytes = SHIFT_FRACTION * PARTICLES_PER_PROC * 6 * 8.0
    return {
        "charge Allreduce": coll.allreduce(grid_bytes, scenario.npe_per_domain),
        "toroidal shift": coll.halo_exchange(shift_bytes, num_neighbors=2),
    }


def step_time(spec: MachineSpec, scenario: GTCScenario) -> tuple[float, float]:
    """(compute_seconds, comm_seconds) per step per rank."""
    model = make_model(spec)
    t_comp = model.time(rank_work(spec))

    net = NetworkModel(spec, scenario.nprocs)
    coll = CollectiveModel(net)
    grid_bytes = PAPER_PLANE.num_points * 8.0
    t_reduce = coll.allreduce(grid_bytes, scenario.npe_per_domain)
    shift_bytes = SHIFT_FRACTION * PARTICLES_PER_PROC * 6 * 8.0
    t_shift = coll.halo_exchange(shift_bytes, num_neighbors=2)
    return t_comp, t_reduce + t_shift


def predict(machine: str, scenario: GTCScenario) -> PerfResult:
    """Modeled Table 4 cell for one machine."""
    spec = get_machine(machine)
    t_comp, t_comm = step_time(spec, scenario)
    residual = get_calibration("gtc", spec.name)
    t_total = t_comp / residual + t_comm
    flops = rank_work(spec).flops
    return PerfResult(
        app="gtc",
        machine=spec.name,
        nprocs=scenario.nprocs,
        gflops_per_proc=flops / t_total / 1e9,
        config=scenario.label,
        wall_seconds=t_total,
        total_flops=flops * scenario.nprocs,
    )
