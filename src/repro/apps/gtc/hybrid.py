"""Why hybrid MPI/OpenMP GTC fails on the vector machines — quantified.

The paper's §4 makes two distinct arguments, both modeled here:

1. **Memory**: the work-vector method "requires as many copies of the
   grid as the number of elements in the vector register (256 for the
   ES and X1 in MSP mode) ... increases the memory footprint 2–8X
   compared with the same calculation on a superscalar machine ...
   severely limiting the problem sizes that can be simulated."
   :func:`max_plane_points` turns the catalog's node-memory figures
   into the largest poloidal plane each machine can afford.

2. **Vector-length competition**: "the loop-level parallelization
   reduces the size of the vector loops, which in turn decreases the
   overall performance" — "vectorization and thread-based loop-level
   parallelism compete directly with each other."
   :func:`hybrid_rate_factor` evaluates the Hockney penalty of
   splitting the particle loops across threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...machines.spec import MachineSpec, ProcessorKind
from ...machines.vector import vector_efficiency
from .deposit import DEFAULT_WORK_VECTOR_COPIES
from .grid import PoloidalGrid

#: Fraction of a CPU's memory share budgeted to charge-grid copies
#: (the rest holds particles and field arrays).
GRID_MEMORY_SHARE = 0.25

#: Per-particle memory: 6 phase-space words plus integrator scratch.
BYTES_PER_PARTICLE = 12 * 8


def grid_copies_per_cpu(spec: MachineSpec) -> int:
    """Private charge-grid copies each CPU's deposition needs."""
    if spec.kind is ProcessorKind.VECTOR:
        return DEFAULT_WORK_VECTOR_COPIES
    return 1


def max_plane_points(spec: MachineSpec) -> int:
    """Largest poloidal-plane size (points) the memory budget allows.

    Per-CPU memory share x GRID_MEMORY_SHARE must hold every grid copy
    at 8 bytes per point.
    """
    per_cpu = spec.node.memory_gib * 2**30 / spec.node.cpus_per_node
    budget = per_cpu * GRID_MEMORY_SHARE
    return int(budget / (grid_copies_per_cpu(spec) * 8.0))


def memory_footprint_ratio(vector: MachineSpec, scalar: MachineSpec) -> float:
    """Grid-memory ratio of the vector code path over the scalar one."""
    return grid_copies_per_cpu(vector) / grid_copies_per_cpu(scalar)


def hybrid_rate_factor(spec: MachineSpec, threads: int) -> float:
    """Relative particle-kernel rate when loops split across threads.

    Threads divide the vectorized trip counts; the Hockney efficiency at
    the shortened length (relative to the full-register length) is the
    paper's "compete directly with each other" penalty.  Superscalar
    machines are unaffected (factor 1.0) — which is why OpenMP was a
    *win* there (it reduces MPI ranks) and a loss on the vector systems.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if spec.kind is not ProcessorKind.VECTOR or threads == 1:
        return 1.0
    full = vector_efficiency(spec.vector, spec.vector.register_length)
    split = vector_efficiency(
        spec.vector, max(1.0, spec.vector.register_length / threads)
    )
    return split / full


@dataclass(frozen=True)
class HybridVerdict:
    """Summary row of the hybrid-mode analysis for one machine."""

    machine: str
    copies_per_cpu: int
    max_plane_points: int
    rate_factor_4_threads: float

    @property
    def hybrid_attractive(self) -> bool:
        """OpenMP pays off only where it costs no vector performance."""
        return self.rate_factor_4_threads > 0.95


def analyze(spec: MachineSpec) -> HybridVerdict:
    return HybridVerdict(
        machine=spec.name,
        copies_per_cpu=grid_copies_per_cpu(spec),
        max_plane_points=max_plane_points(spec),
        rate_factor_4_threads=hybrid_rate_factor(spec, 4),
    )


def supports_plane(spec: MachineSpec, plane: PoloidalGrid) -> bool:
    """Does the machine's memory budget admit this poloidal grid?"""
    return plane.num_points <= max_plane_points(spec)
