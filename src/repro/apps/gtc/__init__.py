"""GTC — gyrokinetic particle-in-cell turbulence simulation (paper §4)."""

from .decomp import GTCDecomposition, choose_decomposition
from .deposit import (
    DEFAULT_WORK_VECTOR_COPIES,
    DEPOSIT_FLOPS_PER_PARTICLE,
    GYRO_POINTS,
    deposit_scalar,
    deposit_work,
    deposit_work_vector,
    gyro_ring,
    work_vector_memory_overhead,
)
from .grid import PoloidalGrid, TorusGrid
from .hybrid import (
    HybridVerdict,
    analyze as analyze_hybrid,
    hybrid_rate_factor,
    max_plane_points,
    memory_footprint_ratio,
)
from .particles import (
    DEFAULT_SPECIES,
    PARTICLE_FIELDS,
    PARTICLE_WORDS,
    ParticleArray,
    Species,
    load_multispecies,
    load_particles,
    split_particles,
)
from .poisson import electric_field, laplacian, poisson_work, solve_poisson
from .push import (
    PUSH_FLOPS_PER_PARTICLE,
    PushParams,
    gather_field,
    push_particles,
    push_work,
)
from .shift import classify, shift_particles
from .solver import GTC, GTCParams
from .workload import (
    PAPER_NTOROIDAL,
    PARTICLES_PER_PROC,
    TABLE4_ROWS,
    GTCScenario,
    predict,
)

__all__ = [
    "DEFAULT_WORK_VECTOR_COPIES",
    "DEPOSIT_FLOPS_PER_PARTICLE",
    "GTC",
    "GTCDecomposition",
    "GTCParams",
    "GTCScenario",
    "GYRO_POINTS",
    "HybridVerdict",
    "analyze_hybrid",
    "PAPER_NTOROIDAL",
    "PARTICLES_PER_PROC",
    "PARTICLE_FIELDS",
    "PARTICLE_WORDS",
    "PUSH_FLOPS_PER_PARTICLE",
    "ParticleArray",
    "Species",
    "DEFAULT_SPECIES",
    "PoloidalGrid",
    "PushParams",
    "TABLE4_ROWS",
    "TorusGrid",
    "choose_decomposition",
    "classify",
    "deposit_scalar",
    "deposit_work",
    "deposit_work_vector",
    "electric_field",
    "gather_field",
    "gyro_ring",
    "hybrid_rate_factor",
    "laplacian",
    "load_multispecies",
    "max_plane_points",
    "memory_footprint_ratio",
    "load_particles",
    "poisson_work",
    "predict",
    "push_particles",
    "push_work",
    "shift_particles",
    "solve_poisson",
    "split_particles",
    "work_vector_memory_overhead",
]
