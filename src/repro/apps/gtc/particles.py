"""Particle storage and loading for the GTC mini-app.

Particles carry the gyrokinetic phase-space coordinates
``(r, theta, zeta, v_parallel)`` plus a statistical weight.  Loading is
uniform in the annulus volume and Maxwellian in parallel velocity —
"the update approach maintains a good load balance due to the
uniformity of the particle distribution".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .grid import PoloidalGrid, TorusGrid

#: Scalars stored per particle (r, theta, zeta, vpar, weight, species).
PARTICLE_FIELDS = ("r", "theta", "zeta", "vpar", "weight", "species")
PARTICLE_WORDS = len(PARTICLE_FIELDS)


@dataclass(frozen=True)
class Species:
    """A particle species of the gyrokinetic system.

    "Simulations with multiple species are essential to study the
    transport of the different products created by the fusion reaction
    in burning plasma experiments.  These multi-species calculations
    require a very large number of particles and will benefit from the
    added decomposition."

    Attributes
    ----------
    charge, mass:
        In units of the reference ion's; the deposited weight carries
        the charge, the Maxwellian loading width scales with
        ``sqrt(temperature / mass)``.
    fraction:
        Share of the total particle budget given to this species.
    """

    name: str
    charge: float = 1.0
    mass: float = 1.0
    temperature: float = 1.0
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.mass <= 0 or self.temperature <= 0:
            raise ValueError("mass and temperature must be positive")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")

    @property
    def thermal_velocity(self) -> float:
        return float(np.sqrt(self.temperature / self.mass))


#: The default single-species (deuterium-like reference ion) setup.
DEFAULT_SPECIES: tuple[Species, ...] = (Species(name="ion"),)


@dataclass
class ParticleArray:
    """Structure-of-arrays particle container (vector-friendly layout).

    ``weight`` is the *charge-carrying* statistical weight (species
    charge folded in); ``species`` is the per-particle species index.
    """

    r: np.ndarray = field(default_factory=lambda: np.empty(0))
    theta: np.ndarray = field(default_factory=lambda: np.empty(0))
    zeta: np.ndarray = field(default_factory=lambda: np.empty(0))
    vpar: np.ndarray = field(default_factory=lambda: np.empty(0))
    weight: np.ndarray = field(default_factory=lambda: np.empty(0))
    species: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __post_init__(self) -> None:
        if len(self.species) == 0 and len(self.r) > 0:
            self.species = np.zeros(len(self.r))
        n = len(self.r)
        for name in PARTICLE_FIELDS:
            if len(getattr(self, name)) != n:
                raise ValueError("particle component lengths differ")

    def __len__(self) -> int:
        return len(self.r)

    @property
    def total_charge(self) -> float:
        return float(self.weight.sum())

    def species_count(self, index: int) -> int:
        """Number of particles of one species."""
        return int((self.species.astype(np.int64) == index).sum())

    def species_charge(self, index: int) -> float:
        """Deposited charge carried by one species."""
        mask = self.species.astype(np.int64) == index
        return float(self.weight[mask].sum())

    def pack(self, mask: np.ndarray) -> np.ndarray:
        """Serialize the masked particles into a (n, 5) buffer."""
        return np.stack(
            [getattr(self, f)[mask] for f in PARTICLE_FIELDS], axis=1
        )

    @classmethod
    def unpack(cls, buffer: np.ndarray) -> "ParticleArray":
        """Inverse of :meth:`pack`."""
        if buffer.ndim != 2 or buffer.shape[1] != PARTICLE_WORDS:
            raise ValueError("buffer must be (n, 5)")
        return cls(*(buffer[:, k].copy() for k in range(PARTICLE_WORDS)))

    def keep(self, mask: np.ndarray) -> "ParticleArray":
        """New array containing only the masked particles."""
        return ParticleArray(
            *(getattr(self, f)[mask].copy() for f in PARTICLE_FIELDS)
        )

    def extend(self, other: "ParticleArray") -> "ParticleArray":
        """New array with ``other``'s particles appended."""
        return ParticleArray(
            *(
                np.concatenate([getattr(self, f), getattr(other, f)])
                for f in PARTICLE_FIELDS
            )
        )

    def copy(self) -> "ParticleArray":
        return ParticleArray(
            *(getattr(self, f).copy() for f in PARTICLE_FIELDS)
        )


def load_particles(
    torus: TorusGrid,
    num: int,
    domain: int,
    rng: np.random.Generator,
    thermal_velocity: float = 1.0,
) -> ParticleArray:
    """Load ``num`` particles uniformly into one toroidal domain.

    Radial positions sample the annulus uniformly *in area*
    (``r ~ sqrt(U)`` between the squared bounds); zeta is uniform within
    the domain's wedge; ``v_parallel`` is Maxwellian.  The particles of
    the gyrokinetic system "are not subject to the Courant condition
    limitations" — velocities may be large relative to the grid.
    """
    if num < 0:
        raise ValueError("num must be non-negative")
    plane = torus.plane
    z_lo, z_hi = torus.domain_bounds(domain)
    u = rng.random(num)
    r = np.sqrt(plane.r0**2 + u * (plane.r1**2 - plane.r0**2))
    # keep particles strictly inside the annulus for clean deposition
    r = np.clip(r, plane.r0 + 1e-6, plane.r1 - 1e-6)
    return ParticleArray(
        r=r,
        theta=rng.random(num) * 2.0 * np.pi,
        zeta=z_lo + rng.random(num) * (z_hi - z_lo),
        vpar=rng.normal(0.0, thermal_velocity, num),
        weight=np.full(num, 1.0),
        species=np.zeros(num),
    )


def load_multispecies(
    torus: TorusGrid,
    num: int,
    domain: int,
    rng: np.random.Generator,
    species: tuple[Species, ...] = DEFAULT_SPECIES,
) -> ParticleArray:
    """Load a multi-species population into one toroidal domain.

    The particle budget is split by each species' ``fraction``
    (normalized); every species loads uniformly in space with its own
    Maxwellian width, carries its charge in the weight, and is tagged
    with its species index.
    """
    if not species:
        raise ValueError("need at least one species")
    fractions = np.array([s.fraction for s in species], dtype=float)
    fractions /= fractions.sum()
    counts = np.floor(fractions * num).astype(int)
    counts[0] += num - counts.sum()  # remainder to the first species

    populations = []
    for index, (spec, count) in enumerate(zip(species, counts)):
        pop = load_particles(
            torus, int(count), domain, rng, spec.thermal_velocity
        )
        pop.weight[:] = spec.charge
        pop.species[:] = float(index)
        populations.append(pop)
    merged = populations[0]
    for pop in populations[1:]:
        merged = merged.extend(pop)
    return merged


def split_particles(
    particles: ParticleArray, num_splits: int
) -> list[ParticleArray]:
    """Partition a domain's particles among its particle-split ranks.

    This is the paper's new third level of parallelism: "the updated
    algorithm splits the particles between several processors within
    each domain of the 1D spatial decomposition".
    """
    if num_splits < 1:
        raise ValueError("num_splits must be >= 1")
    n = len(particles)
    bounds = [n * k // num_splits for k in range(num_splits + 1)]
    out = []
    for k in range(num_splits):
        sl = slice(bounds[k], bounds[k + 1])
        out.append(
            ParticleArray(
                *(getattr(particles, f)[sl].copy() for f in PARTICLE_FIELDS)
            )
        )
    return out
