"""Gyrokinetic Poisson solve on a poloidal plane.

The PIC field solve: given the deposited charge density, solve

    -laplacian(phi) = rho

on the annulus, with the potential pinned to zero on the inner and
outer flux surfaces and periodic in theta.  The discrete operator is
the standard 5-point polar Laplacian

    1/r d/dr (r dphi/dr) + 1/r^2 d2phi/dtheta2

diagonalized by an FFT in theta: each poloidal harmonic ``m`` leaves a
radial tridiagonal system, solved directly.  Within a toroidal domain
the solve is cheap relative to the particle work ("the computational
work directly involving the particles accounts for almost 85% of the
overhead").
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_banded

from ...workload import Work
from .grid import PoloidalGrid


def laplacian(grid: PoloidalGrid, phi: np.ndarray) -> np.ndarray:
    """Discrete polar Laplacian with Dirichlet-r / periodic-theta BCs.

    Ghost values outside the annulus are zero (the Dirichlet pin).
    """
    if phi.shape != grid.shape:
        raise ValueError("phi does not match the grid")
    r = grid.radii[:, None]
    dr, dth = grid.dr, grid.dtheta
    r_half_plus = r + 0.5 * dr
    r_half_minus = r - 0.5 * dr

    phi_up = np.vstack([phi[1:], np.zeros((1, grid.mtheta))])
    phi_dn = np.vstack([np.zeros((1, grid.mtheta)), phi[:-1]])
    radial = (
        r_half_plus * (phi_up - phi) - r_half_minus * (phi - phi_dn)
    ) / (r * dr * dr)

    poloidal = (
        np.roll(phi, -1, axis=1) - 2.0 * phi + np.roll(phi, 1, axis=1)
    ) / (r * r * dth * dth)
    return radial + poloidal


def solve_poisson(grid: PoloidalGrid, rho: np.ndarray) -> np.ndarray:
    """Solve ``-laplacian(phi) = rho``; exact inverse of :func:`laplacian`."""
    if rho.shape != grid.shape:
        raise ValueError("rho does not match the grid")
    r = grid.radii
    dr, dth = grid.dr, grid.dtheta
    m = np.fft.rfftfreq(grid.mtheta, d=1.0 / grid.mtheta)  # harmonics

    rho_m = np.fft.rfft(rho, axis=1)  # (mpsi, nm)
    phi_m = np.empty_like(rho_m)

    # Tridiagonal radial operator per harmonic:
    #   a_i phi_{i-1} + b_i phi_i + c_i phi_{i+1} = -rho_i
    lower = (r - 0.5 * dr) / (r * dr * dr)  # coefficient of phi_{i-1}
    upper = (r + 0.5 * dr) / (r * dr * dr)  # coefficient of phi_{i+1}
    # theta second derivative of harmonic m: -(2 - 2 cos(m dth)) / dth^2
    for k, mk in enumerate(m):
        diag = (
            -(lower + upper)
            - (2.0 - 2.0 * np.cos(mk * dth)) / (r * r * dth * dth)
        )
        ab = np.zeros((3, grid.mpsi), dtype=complex)
        ab[0, 1:] = upper[:-1]
        ab[1, :] = diag
        ab[2, :-1] = lower[1:]
        phi_m[:, k] = solve_banded((1, 1), ab, -rho_m[:, k])

    return np.fft.irfft(phi_m, n=grid.mtheta, axis=1)


def electric_field(grid: PoloidalGrid, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """E = -grad(phi): radial and poloidal components on the grid."""
    dr, dth = grid.dr, grid.dtheta
    r = grid.radii[:, None]
    phi_up = np.vstack([phi[1:], np.zeros((1, grid.mtheta))])
    phi_dn = np.vstack([np.zeros((1, grid.mtheta)), phi[:-1]])
    e_r = -(phi_up - phi_dn) / (2.0 * dr)
    e_theta = -(np.roll(phi, -1, axis=1) - np.roll(phi, 1, axis=1)) / (
        2.0 * r * dth
    )
    return e_r, e_theta


def poisson_work(grid: PoloidalGrid, name: str = "gtc.poisson") -> Work:
    """Workload of one field solve (FFTs + tridiagonal sweeps).

    FFT cost 5 N log2 N per line; the tridiagonal solves are ~8 flops
    per unknown per harmonic.  Vectorization runs across theta lines /
    harmonics, so trip counts follow the grid dimensions.
    """
    n = grid.mtheta
    fft_flops = 2 * grid.mpsi * 5.0 * n * np.log2(n)  # forward + inverse
    tri_flops = 8.0 * grid.mpsi * (n // 2 + 1) * 2  # complex sweeps
    points = grid.num_points
    return Work(
        name=name,
        flops=fft_flops + tri_flops,
        bytes_unit=16.0 * points * 6,
        vector_fraction=0.92,
        avg_vector_length=float(min(256, max(grid.mpsi, grid.mtheta))),
        fma_fraction=0.7,
        cache_fraction=0.5,
    )
