"""Toroidal particle shift between adjacent domains.

After a push, particles whose zeta has crossed a domain boundary are
packed into buffers and exchanged with the ±zeta neighbor — GTC's only
point-to-point communication phase.  Particles never move more than one
domain per step when ``dt * v_par / R0 < dzeta`` (asserted in tests via
the Courant-free but single-hop condition).
"""

from __future__ import annotations

import numpy as np

from ...simmpi.comm import Communicator, Message
from .grid import TorusGrid
from .particles import PARTICLE_WORDS, ParticleArray


def classify(
    torus: TorusGrid, domain: int, particles: ParticleArray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Masks of (stay, go_left, go_right) particles for one domain.

    zeta is first wrapped into [0, 2 pi); a particle belongs left if its
    wrapped domain is ``domain - 1`` (mod n), right if ``domain + 1``.
    Faster particles would hop multiple domains; the mini-app's step
    sizes keep hops single (validated by the caller).
    """
    n = torus.ntoroidal
    dom = torus.domain_of(particles.zeta)
    stay = dom == domain
    left = dom == (domain - 1) % n
    right = dom == (domain + 1) % n
    if not np.all(stay | left | right):
        raise ValueError(
            "particle moved more than one toroidal domain in one step; "
            "reduce dt or thermal velocity"
        )
    if n == 2 and np.any(left & right):  # pragma: no cover - degenerate
        raise ValueError("ambiguous neighbor with ntoroidal == 2")
    return stay, left, right


def shift_particles(
    comm: Communicator,
    torus: TorusGrid,
    rank_domain: list[int],
    rank_neighbors: list[tuple[int, int]],
    particles_by_rank: list[ParticleArray],
) -> list[ParticleArray]:
    """Exchange boundary-crossing particles between all ranks at once.

    Parameters
    ----------
    comm:
        The world communicator (all ranks participate).
    rank_domain:
        Toroidal domain index of each rank.
    rank_neighbors:
        ``(left_rank, right_rank)`` partner of each rank — the rank with
        the same particle-split index in the adjacent domain.
    particles_by_rank:
        Current particle population of each rank.

    Returns the new per-rank populations.  Total particle count and
    total charge are conserved (tests enforce this exactly).
    """
    nranks = comm.nprocs
    wrapped: list[ParticleArray] = []
    outgoing: list[tuple[np.ndarray, np.ndarray]] = []
    for rank in range(nranks):
        p = particles_by_rank[rank]
        p = ParticleArray(
            r=p.r,
            theta=p.theta,
            zeta=np.mod(p.zeta, 2.0 * np.pi),
            vpar=p.vpar,
            weight=p.weight,
            species=p.species,
        )
        stay, left, right = classify(torus, rank_domain[rank], p)
        wrapped.append(p.keep(stay))
        outgoing.append((p.pack(left), p.pack(right)))

    messages = []
    for rank in range(nranks):
        left_rank, right_rank = rank_neighbors[rank]
        buf_left, buf_right = outgoing[rank]
        messages.append(Message(src=rank, dst=left_rank, payload=buf_left, tag=0))
        messages.append(Message(src=rank, dst=right_rank, payload=buf_right, tag=1))
    received = comm.exchange(messages)

    result = []
    for rank in range(nranks):
        merged = wrapped[rank]
        for buf in received.get(rank, []):
            if buf.size:
                merged = merged.extend(ParticleArray.unpack(buf.reshape(-1, PARTICLE_WORDS)))
        result.append(merged)
    return result
