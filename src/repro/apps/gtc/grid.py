"""Toroidal field-line grid for the GTC mini-app.

GTC's simulation geometry is a torus discretized into ``ntoroidal``
poloidal planes (the 1-D toroidal domain decomposition — 64 domains in
the paper, fixed by the quasi-2D physics of the field-aligned
coordinate system, not by algorithmic scaling).  Each plane carries an
annular polar grid of ``mpsi`` radial flux surfaces by ``mtheta``
poloidal points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PoloidalGrid:
    """Annular (r, theta) grid of one poloidal plane.

    Radial nodes ``r_i = r0 + i dr`` for ``i in [0, mpsi)``; poloidal
    nodes ``theta_j = j dtheta`` (periodic).  The electrostatic
    potential is pinned to zero on the inner and outer flux surfaces.
    """

    mpsi: int = 32
    mtheta: int = 64
    r0: float = 0.1
    r1: float = 1.0

    def __post_init__(self) -> None:
        if self.mpsi < 4 or self.mtheta < 4:
            raise ValueError("grid must be at least 4x4")
        if not 0.0 < self.r0 < self.r1:
            raise ValueError("need 0 < r0 < r1")

    @property
    def dr(self) -> float:
        return (self.r1 - self.r0) / (self.mpsi - 1)

    @property
    def dtheta(self) -> float:
        return 2.0 * np.pi / self.mtheta

    @property
    def shape(self) -> tuple[int, int]:
        return (self.mpsi, self.mtheta)

    @property
    def num_points(self) -> int:
        return self.mpsi * self.mtheta

    @property
    def radii(self) -> np.ndarray:
        return self.r0 + self.dr * np.arange(self.mpsi)

    @property
    def thetas(self) -> np.ndarray:
        return self.dtheta * np.arange(self.mtheta)

    def locate(self, r: np.ndarray, theta: np.ndarray) -> tuple[
        np.ndarray, np.ndarray, np.ndarray, np.ndarray
    ]:
        """Cell indices and offsets of particle positions.

        Returns ``(i, j, fi, fj)``: the lower radial/poloidal node
        indices and the fractional offsets in [0, 1) used by the
        bilinear (CIC) deposition/gather stencils.  Radial positions
        are clamped one cell inside the annulus; theta wraps.
        """
        ri = (np.asarray(r) - self.r0) / self.dr
        ri = np.clip(ri, 0.0, self.mpsi - 1 - 1e-9)
        i = ri.astype(np.int64)
        fi = ri - i

        tj = np.mod(np.asarray(theta), 2.0 * np.pi) / self.dtheta
        j = tj.astype(np.int64) % self.mtheta
        fj = tj - np.floor(tj)
        return i, j, fi, fj

    def zeros(self) -> np.ndarray:
        return np.zeros(self.shape)


@dataclass(frozen=True)
class TorusGrid:
    """The full device: ``ntoroidal`` poloidal planes around the torus."""

    plane: PoloidalGrid
    ntoroidal: int = 8
    major_radius: float = 3.0

    def __post_init__(self) -> None:
        if self.ntoroidal < 1:
            raise ValueError("need at least one toroidal domain")
        if self.major_radius <= self.plane.r1:
            raise ValueError("major radius must exceed the minor radius")

    @property
    def dzeta(self) -> float:
        return 2.0 * np.pi / self.ntoroidal

    @property
    def total_points(self) -> int:
        return self.plane.num_points * self.ntoroidal

    def domain_of(self, zeta: np.ndarray) -> np.ndarray:
        """Toroidal domain index owning each zeta angle."""
        z = np.mod(np.asarray(zeta), 2.0 * np.pi)
        return np.minimum(
            (z / self.dzeta).astype(np.int64), self.ntoroidal - 1
        )

    def domain_bounds(self, domain: int) -> tuple[float, float]:
        if not 0 <= domain < self.ntoroidal:
            raise IndexError(f"domain {domain} out of range")
        return domain * self.dzeta, (domain + 1) * self.dzeta
