"""Gyro-averaged charge deposition (scatter) — GTC's critical kernel.

"Randomly localized particles deposit their charge on the grid, thereby
causing poor cache reuse on superscalar machines.  The effect ... is
more pronounced on vector systems, since two or more particles may
contribute to the charge at the same grid point — creating a potential
memory-dependency conflict."

GTC charges are *gyrophase-averaged*: each guiding center deposits a
quarter of its weight at four points on its Larmor ring, and each ring
point spreads over the four surrounding grid nodes (CIC) — 16 scattered
read-modify-writes per particle per step.

Two implementations, numerically identical up to floating-point
reassociation (tests enforce agreement):

* :func:`deposit_scalar` — the superscalar path: a single histogram
  accumulation (``np.add.at``), the analogue of the cache-blocked
  scalar loop.
* :func:`deposit_work_vector` — the vector path: particles are striped
  over ``num_copies`` private grid copies so every element of a vector
  register writes to its own copy, then the copies are reduced.  This
  is the paper's work-vector method [16]: it fully vectorizes the
  scatter at the price of a 2–8x memory footprint (256 copies on the
  ES/X1), which is what rules out mixed MPI/OpenMP on the vector
  platforms.
"""

from __future__ import annotations

import numpy as np

from ...runtime.arena import Arena
from ...workload import Work
from .grid import PoloidalGrid
from .particles import PARTICLE_WORDS, ParticleArray

#: Grid copies used by the work-vector method on 256-element registers.
DEFAULT_WORK_VECTOR_COPIES = 256

#: Gyrophase sample count of the ring average (standard 4-point).
GYRO_POINTS = 4

#: Arithmetic per particle, modeling the full GTC charge kernel: ring
#: geometry in field-line coordinates, per-ring-point locate + CIC
#: weights + accumulates, and the work-vector bookkeeping (~450 ops;
#: the production code's charge deposition loop, not just our
#: mini-app's simplified arithmetic).
DEPOSIT_FLOPS_PER_PARTICLE = 450.0

#: Scattered bytes per particle: 4 ring points x 4 grid nodes x 8 B x
#: read+modify+write (2 transfers) x 2 (potential+density arrays), plus
#: the particle coordinate reads.
DEPOSIT_GATHER_BYTES = GYRO_POINTS * 4 * 8 * 2 * 2 + 8 * 8


def gyro_ring(
    grid: PoloidalGrid,
    particles: ParticleArray,
    gyro_radius: float,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """The four Larmor-ring sample positions of every particle.

    Quadrature points sit at gyrophases 0, pi/2, pi, 3pi/2: offsets
    (+rho, 0), (0, +rho), (-rho, 0), (0, -rho) in the local (radial,
    binormal) frame; the binormal offset maps to a theta shift of
    rho / r.  A zero gyro radius degenerates to the guiding center.
    """
    r, theta = particles.r, particles.theta
    if gyro_radius == 0.0:
        return [(r, theta)] * 1
    rho = gyro_radius
    lo, hi = grid.r0 + 1e-9, grid.r1 - 1e-9
    ring = []
    for dr_off, dt_scale in ((rho, 0.0), (0.0, rho), (-rho, 0.0), (0.0, -rho)):
        rr = np.clip(r + dr_off, lo, hi)
        tt = theta + (dt_scale / r if dt_scale else 0.0)
        ring.append((rr, tt))
    return ring


def _cic_stencil(
    grid: PoloidalGrid,
    r: np.ndarray,
    theta: np.ndarray,
    weight: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Flattened 4-point CIC indices and weights, shapes (4, n)."""
    i, j, fi, fj = grid.locate(r, theta)
    jp = (j + 1) % grid.mtheta
    ip = np.minimum(i + 1, grid.mpsi - 1)

    wts = np.stack(
        [
            weight * (1 - fi) * (1 - fj),
            weight * (1 - fi) * fj,
            weight * fi * (1 - fj),
            weight * fi * fj,
        ]
    )
    idx = np.stack(
        [
            i * grid.mtheta + j,
            i * grid.mtheta + jp,
            ip * grid.mtheta + j,
            ip * grid.mtheta + jp,
        ]
    )
    return idx, wts


def _ring_stencils(
    grid: PoloidalGrid, particles: ParticleArray, gyro_radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked CIC stencils over all gyro-ring points, shapes (4k, n)."""
    ring = gyro_ring(grid, particles, gyro_radius)
    share = particles.weight / len(ring)
    idx_parts, wt_parts = [], []
    for rr, tt in ring:
        idx, wts = _cic_stencil(grid, rr, tt, share)
        idx_parts.append(idx)
        wt_parts.append(wts)
    return np.concatenate(idx_parts), np.concatenate(wt_parts)


def deposit_scalar(
    grid: PoloidalGrid,
    particles: ParticleArray,
    gyro_radius: float = 0.0,
    out: np.ndarray | None = None,
    arena: Arena | None = None,
) -> np.ndarray:
    """Histogram-style deposition (the cache-machine code path).

    ``out`` (optional, shape ``grid.shape``) receives the density and
    is fully overwritten; with an ``arena`` the accumulation buffer is
    reused across calls instead of freshly allocated.  The scatter-add
    order is unchanged either way, so results are bitwise-identical.
    """
    idx, wts = _ring_stencils(grid, particles, gyro_radius)
    if out is not None:
        rho = out.view()
        rho.shape = (grid.num_points,)  # raises if out is not viewable flat
        rho.fill(0.0)
    elif arena is not None:
        rho = arena.scratch("gtc.deposit.rho", (grid.num_points,))
        rho.fill(0.0)
    else:
        rho = np.zeros(grid.num_points)
    np.add.at(rho, idx.ravel(), wts.ravel())
    return rho.reshape(grid.shape)


def deposit_work_vector(
    grid: PoloidalGrid,
    particles: ParticleArray,
    num_copies: int = DEFAULT_WORK_VECTOR_COPIES,
    gyro_radius: float = 0.0,
    out: np.ndarray | None = None,
    arena: Arena | None = None,
) -> np.ndarray:
    """Work-vector deposition (the vector-machine code path).

    Particle ``p`` writes to private copy ``p % num_copies``; the copies
    are reduced at the end.  Bincount per stripe keeps each private
    accumulation conflict-free, mirroring the vector-register semantics.
    With an ``arena`` the reduction buffer is reused across calls
    (bitwise-identical accumulation either way).
    """
    if num_copies < 1:
        raise ValueError("num_copies must be >= 1")
    idx, wts = _ring_stencils(grid, particles, gyro_radius)
    n = len(particles)
    if out is not None:
        total = out.view()
        total.shape = (grid.num_points,)  # raises if out not viewable flat
        total.fill(0.0)
    elif arena is not None:
        total = arena.scratch("gtc.deposit.wv_total", (grid.num_points,))
        total.fill(0.0)
    else:
        total = np.zeros(grid.num_points)
    stripe = np.arange(n) % num_copies
    for c in range(num_copies):
        sel = stripe == c
        if not sel.any():
            continue
        total += np.bincount(
            idx[:, sel].ravel(),
            weights=wts[:, sel].ravel(),
            minlength=grid.num_points,
        )
    return total.reshape(grid.shape)


def work_vector_memory_overhead(
    grid: PoloidalGrid, num_copies: int = DEFAULT_WORK_VECTOR_COPIES
) -> int:
    """Extra bytes the work-vector method allocates (the 2–8x story)."""
    return num_copies * grid.num_points * 8


def deposit_work(
    num_particles: int, vectorized: bool, name: str = "gtc.charge"
) -> Work:
    """Workload descriptor for a deposition over ``num_particles``.

    The vector path trades the scatter's memory-dependency stall for
    private-copy traffic: fully vectorizable.  On cache machines the
    poloidal grid is (mostly) cache resident, so the scattered accesses
    hit L2/L3 rather than DRAM — ``gather_cache_fraction`` carries that.
    """
    flops = DEPOSIT_FLOPS_PER_PARTICLE * num_particles
    gather = float(DEPOSIT_GATHER_BYTES) * num_particles
    return Work(
        name=name,
        flops=flops,
        bytes_gather=gather,
        bytes_unit=PARTICLE_WORDS * 8.0 * num_particles,  # particle stream
        # Poloidal grid planes partially fit in L2/L3 on the cache
        # machines, but work arrays and TLB pressure evict aggressively.
        gather_cache_fraction=0.30,
        vector_fraction=0.97 if vectorized else 0.0,
        avg_vector_length=256.0 if vectorized else 1.0,
        fma_fraction=0.6,
    )
