"""Field gather and particle push for the GTC mini-app.

The gather interpolates the grid electric field back to the particle
positions with the same 4-point CIC stencil used by deposition (the
adjoint operation — tests verify <rho, phi> = <E-interp consistency>),
then advances the gyro-center equations of motion:

    dr/dt      = -E_theta / B0          (E x B, radial)
    dtheta/dt  =  E_r / (B0 r) + v_par / (q R0 r)   (E x B + transit)
    dzeta/dt   =  v_par / R0
    dv_par/dt  =  (q/m) E_par           (~0 here: axisymmetric E)

This retains the performance-critical structure — random-access gather,
long vectorizable particle loops — with a physically sensible drift
kinematics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...workload import Work
from .grid import PoloidalGrid, TorusGrid
from .particles import PARTICLE_WORDS, ParticleArray

#: Arithmetic per particle for the gyro-averaged field gather (2 field
#: components x 4 ring points x 4-point CIC) plus the guiding-center
#: push (field-line geometry, RK stages, weight evolution) -- the
#: production kernel's count, ~700 ops.
PUSH_FLOPS_PER_PARTICLE = 700.0

#: Gathered bytes per particle: 2 field arrays x 4 ring points x 4 CIC
#: nodes x 8 bytes, twice (predictor + corrector stages).
PUSH_GATHER_BYTES = 2 * 4 * 4 * 8 * 2


@dataclass(frozen=True)
class PushParams:
    """Integration constants for the guiding-center push."""

    dt: float = 0.01
    b0: float = 1.0
    safety_q: float = 1.5

    def __post_init__(self) -> None:
        if self.dt <= 0 or self.b0 <= 0 or self.safety_q <= 0:
            raise ValueError("push parameters must be positive")


def gather_field(
    grid: PoloidalGrid,
    e_r: np.ndarray,
    e_theta: np.ndarray,
    particles: ParticleArray,
) -> tuple[np.ndarray, np.ndarray]:
    """CIC-interpolate (E_r, E_theta) to the particle positions."""
    i, j, fi, fj = grid.locate(particles.r, particles.theta)
    jp = (j + 1) % grid.mtheta
    ip = np.minimum(i + 1, grid.mpsi - 1)

    w00 = (1 - fi) * (1 - fj)
    w01 = (1 - fi) * fj
    w10 = fi * (1 - fj)
    w11 = fi * fj

    def interp(field: np.ndarray) -> np.ndarray:
        return (
            w00 * field[i, j]
            + w01 * field[i, jp]
            + w10 * field[ip, j]
            + w11 * field[ip, jp]
        )

    return interp(e_r), interp(e_theta)


def push_particles(
    torus: TorusGrid,
    particles: ParticleArray,
    e_r_at_p: np.ndarray,
    e_theta_at_p: np.ndarray,
    params: PushParams,
    out: ParticleArray | None = None,
) -> ParticleArray:
    """Advance one time step; returns a new :class:`ParticleArray`.

    Radial excursions reflect off the annulus boundaries (particles
    never leave the device); zeta advances freely and is wrapped by the
    toroidal shift stage.

    ``out`` (optional) is a same-length :class:`ParticleArray` whose
    component arrays are overwritten in place — the allocation-free
    ping-pong path.  It must not share storage with ``particles``.
    The arithmetic is identical either way, so the two modes produce
    bitwise-identical particles.
    """
    plane = torus.plane
    dt = params.dt
    r = particles.r
    vr = -e_theta_at_p / params.b0
    vtheta = e_r_at_p / (params.b0 * r) + particles.vpar / (
        params.safety_q * torus.major_radius * r
    )

    new_r = r + dt * vr
    # reflect at the annulus walls
    lo, hi = plane.r0 + 1e-6, plane.r1 - 1e-6
    new_r = np.where(new_r < lo, 2 * lo - new_r, new_r)
    new_r = np.where(new_r > hi, 2 * hi - new_r, new_r)

    if out is None:
        return ParticleArray(
            r=np.clip(new_r, lo, hi),
            theta=np.mod(particles.theta + dt * vtheta, 2.0 * np.pi),
            zeta=particles.zeta + dt * particles.vpar / torus.major_radius,
            vpar=particles.vpar.copy(),
            weight=particles.weight.copy(),
            species=particles.species.copy(),
        )
    np.clip(new_r, lo, hi, out=out.r)
    np.mod(particles.theta + dt * vtheta, 2.0 * np.pi, out=out.theta)
    np.add(
        particles.zeta, dt * particles.vpar / torus.major_radius, out=out.zeta
    )
    out.vpar[...] = particles.vpar
    out.weight[...] = particles.weight
    out.species[...] = particles.species
    return out


def push_work(
    num_particles: int, vectorized: bool, name: str = "gtc.push"
) -> Work:
    """Workload descriptor for gather+push over ``num_particles``."""
    return Work(
        name=name,
        flops=PUSH_FLOPS_PER_PARTICLE * num_particles,
        bytes_gather=PUSH_GATHER_BYTES * num_particles,
        bytes_unit=PARTICLE_WORDS * 8.0 * num_particles * 2,  # state r+w
        gather_cache_fraction=0.30,
        vector_fraction=0.98 if vectorized else 0.0,
        avg_vector_length=256.0 if vectorized else 1.0,
        fma_fraction=0.65,
    )
