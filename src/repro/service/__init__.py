"""The what-if performance-prediction service: an async API over the
campaign engine.

The paper's question — "how does application X perform on machine Y at
P ranks?" — is answered offline by ``repro.campaign`` sweeps and
``repro-experiments whatif``.  This package serves those answers at
interactive latency to many concurrent clients:

* :mod:`~repro.service.api` — JSON request validation: a predict body
  *is* a :class:`~repro.campaign.spec.RunConfig`, so requests share
  the campaign's content-key identity;
* :mod:`~repro.service.coalesce` — identical in-flight configs dedupe
  to one computation (keyed on the SHA-256 content key);
* :mod:`~repro.service.jobs` — the asyncio job queue feeding the
  campaign engine (and its ``ProcessExecutor`` worker pool) in worker
  threads, journaling campaign-style manifests ``repro.perfdb``
  ingests unchanged;
* :mod:`~repro.service.server` — the hand-rolled asyncio HTTP front
  end (predict / jobs / machines / whatif / stats endpoints, NDJSON
  progress streaming);
* :mod:`~repro.service.cli` — ``repro-service serve`` and the
  cache-warming ``repro-service warm`` precompute sweep.

The shared :class:`~repro.campaign.cache.ResultCache` is the warm
tier: ``repro-service warm`` precomputes popular cells before traffic
arrives, cold misses run on the worker pool, and every completed
prediction is published back for every later client.
"""

from .api import ApiError, parse_predict
from .coalesce import Coalescer
from .jobs import DONE, FAILED, QUEUED, RUNNING, Job, JobQueue
from .server import ReproService, ServiceThread

__all__ = [
    "ApiError",
    "Coalescer",
    "DONE",
    "FAILED",
    "Job",
    "JobQueue",
    "QUEUED",
    "ReproService",
    "RUNNING",
    "ServiceThread",
    "parse_predict",
]
