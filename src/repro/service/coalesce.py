"""Request coalescing: identical in-flight configs share one computation.

The identity is the campaign's own SHA-256 content key
(:meth:`RunConfig.key` — canonical config JSON + package version), so
"identical" here means exactly what it means to the result cache: two
requests that would produce byte-identical cache entries.  The first
request creates the job; every later request arriving while that job
is still queued or running attaches to it, waits on the same event
stream, and receives the same result.  N identical concurrent clients
therefore cost exactly one engine computation — the acceptance
criterion ``/v1/stats`` makes observable via ``coalesced_total`` and
the cache hit/miss counters.

Single-threaded by construction: every method runs on the event loop.
"""

from __future__ import annotations

from ..campaign.spec import RunConfig
from .jobs import Job, JobQueue


class Coalescer:
    """In-flight job dedupe keyed on RunConfig content keys."""

    def __init__(self) -> None:
        self._inflight: dict[str, Job] = {}
        #: Requests served by attaching to an existing in-flight job.
        self.coalesced_total = 0

    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    async def submit(
        self, config: RunConfig, queue: JobQueue
    ) -> tuple[Job, bool]:
        """Route one request: attach to the in-flight twin or enqueue.

        Returns ``(job, coalesced)`` — ``coalesced`` is True when the
        request piggybacked on an existing computation.
        """
        key = config.key()
        job = self._inflight.get(key)
        if job is not None and not job.finished:
            job.coalesced += 1
            self.coalesced_total += 1
            return job, True
        job = await queue.submit(config)
        self._inflight[key] = job
        return job, False

    def release(self, job: Job) -> None:
        """Drop a finished job from the in-flight index (wired as the
        queue's ``on_finish`` hook, so release happens before waiters
        observe the terminal event)."""
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
