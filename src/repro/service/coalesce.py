"""Request coalescing: identical in-flight configs share one computation.

The identity is the campaign's own SHA-256 content key
(:meth:`RunConfig.key` — canonical config JSON + package version), so
"identical" here means exactly what it means to the result cache: two
requests that would produce byte-identical cache entries.  The first
request creates the job; every later request arriving while that job
is still queued or running attaches to it, waits on the same event
stream, and receives the same result.  N identical concurrent clients
therefore cost exactly one engine computation — the acceptance
criterion ``/v1/stats`` makes observable via ``coalesced_total`` and
the cache hit/miss counters.

Single-threaded by construction: every method runs on the event loop.
"""

from __future__ import annotations

import asyncio

from ..campaign.spec import RunConfig
from .jobs import Job, JobQueue


class Coalescer:
    """In-flight job dedupe keyed on RunConfig content keys.

    The index holds either a live :class:`Job` or an
    :class:`asyncio.Future` *placeholder*.  The placeholder is the fix
    for an interleaving hole: ``queue.submit`` awaits, so two identical
    requests could both pass a naive "not in flight" check before
    either's job existed, enqueue two computations, and silently
    overwrite each other in the index.  Reserving the key
    *synchronously* (no await between the check and the reservation)
    makes the second request wait on the first's placeholder and then
    coalesce onto the job it resolves to.
    """

    def __init__(self) -> None:
        self._inflight: "dict[str, Job | asyncio.Future]" = {}
        #: Requests served by attaching to an existing in-flight job.
        self.coalesced_total = 0

    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    async def submit(
        self, config: RunConfig, queue: JobQueue
    ) -> tuple[Job, bool]:
        """Route one request: attach to the in-flight twin or enqueue.

        Returns ``(job, coalesced)`` — ``coalesced`` is True when the
        request piggybacked on an existing computation.
        """
        key = config.key()
        while True:
            entry = self._inflight.get(key)
            if isinstance(entry, asyncio.Future):
                # someone is mid-enqueue for this key: wait for their
                # job.  shield() keeps a cancelled waiter from
                # cancelling the shared placeholder under everyone else.
                entry = await asyncio.shield(entry)
                if entry is None:
                    continue  # their enqueue failed; race for the slot
            if entry is not None and not entry.finished:
                entry.coalesced += 1
                self.coalesced_total += 1
                return entry, True
            # slot is empty (or holds only a finished job): reserve it
            # synchronously before the first await
            placeholder = asyncio.get_running_loop().create_future()
            self._inflight[key] = placeholder
            try:
                job = await queue.submit(config)
            except BaseException:
                if self._inflight.get(key) is placeholder:
                    del self._inflight[key]
                if not placeholder.done():
                    placeholder.set_result(None)  # wake waiters to retry
                raise
            if self._inflight.get(key) is placeholder:
                if job.finished:
                    # completed before we could index it (release saw
                    # the placeholder and left it) — don't index a
                    # terminal job
                    del self._inflight[key]
                else:
                    self._inflight[key] = job
            if not placeholder.done():
                placeholder.set_result(job)
            return job, False

    def release(self, job: Job) -> None:
        """Drop a finished job from the in-flight index (wired as the
        queue's ``on_finish`` hook, so release happens before waiters
        observe the terminal event).  The identity check makes this a
        no-op while the slot still holds another request's placeholder
        or a newer job for the same key."""
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
