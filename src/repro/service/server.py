"""The asyncio HTTP front end: what-if predictions at interactive latency.

Hand-rolled HTTP/1.1 over ``asyncio.start_server`` — no dependencies
beyond the standard library.  One request per connection
(``Connection: close``), JSON bodies, and close-delimited NDJSON for
the job progress stream.

Endpoints::

    POST /v1/predict       app x machine x P x executor x backend -> result
                           (body = RunConfig JSON + optional "wait": false)
    GET  /v1/jobs          all tracked jobs (summaries)
    GET  /v1/jobs/<id>     NDJSON event stream (replays, then live)
    GET  /v1/machines      the platform catalog, paper column order
    GET  /v1/whatif/<name> the paper counterfactuals (sx8_fplram,
                           x1_registers, sensitivity, all)
    GET  /v1/stats         cache hit rate, queue depth, coalescing
    GET  /v1/healthz       liveness probe
    POST /v1/shutdown      clean stop (drains the accept loop)

Request flow for ``/v1/predict``: validate -> coalesce on the
campaign's SHA-256 content key -> job queue -> campaign engine in a
worker thread (cache-hit serving or ``ProcessExecutor`` computation)
-> journal to the service manifest (``repro-perfdb`` ingests it) ->
respond.  Identical in-flight requests attach to one computation;
identical later requests are warm cache hits.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path
from typing import Any

from .. import __version__
from ..campaign.cache import ResultCache
from ..campaign.engine import default_manifest_path, resolve_scheduler
from ..campaign.manifest import Manifest, NullManifest
from ..experiments import whatif
from ..machines.catalog import PAPER_ORDER, get_machine
from ..runtime.executors import Executor
from .api import ApiError, parse_predict
from .coalesce import Coalescer
from .jobs import FAILED, JobQueue

#: Largest accepted request body.
MAX_BODY_BYTES = 1 << 20

_ROUTES_HELP = (
    "POST /v1/predict, GET /v1/jobs[/<id>], GET /v1/machines, "
    "GET /v1/whatif/<name>, GET /v1/stats, GET /v1/healthz, "
    "POST /v1/shutdown"
)


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"request body is not valid JSON: {exc}")


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    """Parse one request off the stream, or ``None`` on EOF/garbage."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        return None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length") or 0)
    if length > MAX_BODY_BYTES:
        raise ApiError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return _Request(method.upper(), target.split("?", 1)[0], headers, body)


_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


def _head(
    status: int, content_type: str, length: int | None = None
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Connection: close",
        f"Server: repro-service/{__version__}",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _send_json(
    writer: asyncio.StreamWriter, status: int, payload: Any
) -> None:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    writer.write(_head(status, "application/json", len(body)))
    writer.write(body)
    await writer.drain()


class ReproService:
    """The long-running prediction service over one shared cache."""

    def __init__(
        self,
        cache_dir: "str | Path",
        *,
        workers: int = 2,
        scheduler: "str | Executor" = "processes",
        manifest: "str | Path | Manifest | NullManifest | None" = None,
        campaign_name: str = "service",
    ) -> None:
        self.cache = ResultCache(cache_dir)
        if manifest is None:
            manifest = Manifest(
                default_manifest_path(self.cache.root, campaign_name)
            )
        elif isinstance(manifest, (str, Path)):
            manifest = Manifest(manifest)
        self.manifest = manifest
        self.scheduler = resolve_scheduler(scheduler)
        self.coalescer = Coalescer()
        self.queue = JobQueue(
            cache=self.cache,
            manifest=self.manifest,
            scheduler=self.scheduler,
            workers=workers,
            campaign_name=campaign_name,
            on_finish=self.coalescer.release,
        )
        self.started_at = time.time()
        self.requests: dict[str, int] = {}
        self._whatif_cache: dict[str, Any] = {}
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self.host: str | None = None
        self.port: int | None = None

    # -- lifecycle --------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``self.port`` holds the real port."""
        self._stop_event = asyncio.Event()
        await self.queue.start()
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]

    def request_stop(self) -> None:
        """Ask the serve loop to exit (event-loop thread only)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Block until ``request_stop`` (or ``POST /v1/shutdown``)."""
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.queue.stop()

    # -- connection handling ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    _read_request(reader), timeout=30.0
                )
            except (ApiError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError) as exc:
                if isinstance(exc, ApiError):
                    await _send_json(
                        writer, exc.status, {"error": exc.message}
                    )
                return
            if request is None:
                return
            try:
                await self._dispatch(request, writer)
            except ApiError as exc:
                self._count("errors")
                await _send_json(writer, exc.status, {"error": exc.message})
            except (ConnectionError, BrokenPipeError):
                pass
            except Exception as exc:  # noqa: BLE001 - last-resort boundary
                self._count("errors")
                await _send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _dispatch(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/v1/predict" and method == "POST":
            self._count("predict")
            await self._predict(request, writer)
        elif path == "/v1/jobs" and method == "GET":
            self._count("jobs")
            await _send_json(
                writer,
                200,
                {"jobs": [j.summary() for j in self.queue.jobs()]},
            )
        elif path.startswith("/v1/jobs/") and method == "GET":
            self._count("jobs")
            await self._stream_job(path.removeprefix("/v1/jobs/"), writer)
        elif path == "/v1/machines" and method == "GET":
            self._count("machines")
            await _send_json(writer, 200, {"machines": _machine_rows()})
        elif path.startswith("/v1/whatif/") and method == "GET":
            self._count("whatif")
            await self._whatif(path.removeprefix("/v1/whatif/"), writer)
        elif path == "/v1/stats" and method == "GET":
            self._count("stats")
            await _send_json(writer, 200, self.stats())
        elif path == "/v1/healthz" and method == "GET":
            await _send_json(
                writer, 200, {"ok": True, "version": __version__}
            )
        elif path == "/v1/shutdown" and method == "POST":
            await _send_json(writer, 200, {"ok": True, "stopping": True})
            self.request_stop()
        else:
            self._count("errors")
            raise ApiError(
                404, f"no route {method} {request.path}; try: {_ROUTES_HELP}"
            )

    # -- endpoints --------------------------------------------------------

    async def _predict(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        config, wait = parse_predict(request.json())
        job, coalesced = await self.coalescer.submit(config, self.queue)
        if not wait:
            await _send_json(
                writer, 202, {**job.summary(), "coalesced": coalesced}
            )
            return
        await job.wait()
        if job.state == FAILED:
            await _send_json(
                writer,
                500,
                {**job.summary(), "coalesced": coalesced},
            )
            return
        await _send_json(
            writer,
            200,
            {**job.summary(), "coalesced": coalesced, "result": job.result},
        )

    async def _stream_job(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        job = self.queue.get(job_id)
        if job is None:
            raise ApiError(404, f"no such job: {job_id!r}")
        writer.write(_head(200, "application/x-ndjson"))
        await writer.drain()
        async for event in job.stream():
            writer.write((json.dumps(event, sort_keys=True) + "\n").encode())
            await writer.drain()

    async def _whatif(
        self, name: str, writer: asyncio.StreamWriter
    ) -> None:
        cases = dict(whatif.WHATIF_CASES)
        cases["all"] = whatif.run
        fn = cases.get(name)
        if fn is None:
            raise ApiError(
                404,
                f"unknown what-if {name!r}; available: "
                + ", ".join(sorted(cases)),
            )
        if name not in self._whatif_cache:
            # pure model evaluation — compute once off-loop, serve forever
            self._whatif_cache[name] = await asyncio.to_thread(fn)
        await _send_json(
            writer, 200, {"whatif": name, "data": self._whatif_cache[name]}
        )

    # -- stats ------------------------------------------------------------

    def _count(self, endpoint: str) -> None:
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` payload: cache, queue, coalescing, traffic."""
        session = self.cache.stats
        return {
            "uptime_s": time.time() - self.started_at,
            "version": __version__,
            "scheduler": self.scheduler.name,
            "requests": {
                **self.requests,
                "total": sum(self.requests.values()),
            },
            "cache": {
                "entries": len(self.cache),
                "hits": session.hits,
                "misses": session.misses,
                "puts": session.puts,
                "hit_rate": session.hit_rate,
                "lifetime": self.cache.lifetime_stats().as_dict(),
            },
            "coalesce": {
                "in_flight": self.coalescer.in_flight,
                "coalesced_total": self.coalescer.coalesced_total,
            },
            "queue": {
                "depth": self.queue.depth,
                "running": self.queue.running,
                "workers": self.queue.workers,
            },
            "jobs": {
                "completed": self.queue.completed,
                "failed": self.queue.failed,
                "tracked": len(self.queue.jobs()),
            },
        }


def _machine_rows() -> list[dict[str, Any]]:
    rows = []
    for name in PAPER_ORDER:
        m = get_machine(name)
        rows.append(
            {
                "name": m.name,
                "kind": m.kind.name.lower(),
                "clock_mhz": m.clock_mhz,
                "peak_gflops": m.peak_gflops,
                "stream_bw_gbs": m.stream_bw_gbs,
                "mpi_latency_us": m.mpi_latency_us,
                "mpi_bw_gbs": m.mpi_bw_gbs,
                "interconnect": m.interconnect_name,
                "max_processors": m.max_processors,
                "notes": m.notes,
            }
        )
    return rows


class ServiceThread:
    """Run a :class:`ReproService` on a background event-loop thread.

    The test-suite / benchmark harness: ``with ServiceThread(service)
    as svc:`` binds an ephemeral port, serves until the block exits,
    and tears down cleanly (queue drained, sockets closed).
    """

    def __init__(
        self,
        service: ReproService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._host = host
        self._port = port
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.service.port is None:
            raise RuntimeError("service failed to start within 30 s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.request_stop)
        self._thread.join(timeout=30.0)

    def _main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        try:
            await self.service.start(self._host, self._port)
        except BaseException as exc:  # pragma: no cover - bind failures
            self._startup_error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.service.serve_until_stopped()

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
