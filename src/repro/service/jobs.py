"""The service's job layer: queued predictions over the campaign engine.

A :class:`Job` is one prediction in flight — a single
:class:`~repro.campaign.spec.RunConfig` with an event log every
subscriber can stream (``queued`` -> ``running`` -> ``done``/``failed``).
The :class:`JobQueue` owns a fixed set of asyncio worker tasks; each
worker pops a job and executes it *in a thread* through
:func:`~repro.campaign.engine.run_campaign` with a single explicit
config, the shared :class:`~repro.campaign.cache.ResultCache`, the
shared service manifest, and the shared campaign-level executor
(``ProcessExecutor`` worker pool by default).  That one call buys the
whole campaign contract: cache-hit serving, worker-side cache publish,
per-config failure isolation, and campaign-style JSONL journaling that
``repro.perfdb`` ingests unchanged.

All job state is mutated on the event loop; the only thing that runs
off-loop is the blocking engine call inside ``asyncio.to_thread``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..campaign.cache import ResultCache
from ..campaign.engine import run_campaign
from ..campaign.manifest import Manifest, NullManifest
from ..campaign.report import ConfigResult
from ..campaign.spec import CampaignSpec, RunConfig

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

#: Finished jobs kept around for ``GET /v1/jobs/<id>`` before pruning.
MAX_FINISHED_JOBS = 256


@dataclass
class Job:
    """One prediction moving through the queue."""

    id: str
    config: RunConfig
    key: str
    state: str = QUEUED
    created: float = field(default_factory=time.time)
    #: Requests beyond the first that attached to this computation.
    coalesced: int = 0
    cached: bool = False
    wall_s: float = 0.0
    gflops: float = 0.0
    result: dict[str, Any] | None = None
    error: str | None = None
    events: list[dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._cond = asyncio.Condition()

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def summary(self) -> dict[str, Any]:
        """The job as the API's JSON shape (result omitted)."""
        return {
            "job": self.id,
            "key": self.key,
            "label": self.config.label,
            "config": self.config.to_dict(),
            "state": self.state,
            "coalesced": self.coalesced,
            "cached": self.cached,
            "wall_s": self.wall_s,
            "gflops": self.gflops,
            "error": self.error,
        }

    async def emit(self, event: dict[str, Any]) -> None:
        """Append one stream event and wake every subscriber."""
        self.events.append(event)
        async with self._cond:
            self._cond.notify_all()

    async def stream(self):
        """Yield every event, live, until the job finishes.

        Past events replay first, so a subscriber attaching after
        completion still sees the full history.
        """
        idx = 0
        while True:
            while idx < len(self.events):
                yield self.events[idx]
                idx += 1
            if self.finished:
                return
            async with self._cond:
                if idx >= len(self.events) and not self.finished:
                    await self._cond.wait()

    async def wait(self) -> None:
        """Block until the job reaches a terminal state."""
        async for _ in self.stream():
            pass


#: Executes one config synchronously, returning its ConfigResult.
RunnerFn = Callable[[RunConfig], ConfigResult]


class JobQueue:
    """Fixed-width asyncio worker pool draining predictions in FIFO order."""

    def __init__(
        self,
        *,
        cache: ResultCache | None,
        manifest: "Manifest | NullManifest | None" = None,
        scheduler: Any = "serial",
        workers: int = 2,
        campaign_name: str = "service",
        runner: RunnerFn | None = None,
        on_finish: Callable[[Job], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.cache = cache
        self.manifest = manifest if manifest is not None else NullManifest()
        self.scheduler = scheduler
        self.workers = workers
        self.campaign_name = campaign_name
        self.on_finish = on_finish
        self._runner = runner or self._run_config
        self._queue: asyncio.Queue[Job | None] = asyncio.Queue()
        self._tasks: list[asyncio.Task] = []
        self._jobs: dict[str, Job] = {}
        self._running = 0
        self._seq = 0
        self.completed = 0
        self.failed = 0

    # -- introspection ----------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    @property
    def depth(self) -> int:
        """Jobs accepted but not yet picked up by a worker."""
        return self._queue.qsize()

    @property
    def running(self) -> int:
        return self._running

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        if self._tasks:
            return
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"job-worker-{i}")
            for i in range(self.workers)
        ]

    async def stop(self) -> None:
        """Drain-free shutdown: workers exit after their current job."""
        for _ in self._tasks:
            self._queue.put_nowait(None)
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    async def submit(self, config: RunConfig) -> Job:
        """Accept one prediction; returns the queued :class:`Job`."""
        self._seq += 1
        job = Job(
            id=f"j{self._seq:06d}", config=config, key=config.key()
        )
        self._jobs[job.id] = job
        self._prune()
        await job.emit(
            {
                "event": QUEUED,
                "job": job.id,
                "key": job.key,
                "label": config.label,
                "t": time.time(),
            }
        )
        await self._queue.put(job)
        return job

    # -- execution --------------------------------------------------------

    def _run_config(self, config: RunConfig) -> ConfigResult:
        """Blocking: one config through the campaign engine (hit-first
        serving, worker-pool fan-out, manifest journaling)."""
        spec = CampaignSpec(
            name=self.campaign_name,
            apps=(config.app,),
            steps=config.steps,
        )
        report = run_campaign(
            spec,
            configs=[config],
            cache=self.cache,
            manifest=self.manifest,
            scheduler=self.scheduler,
        )
        return report.rows[0]

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            job.state = RUNNING
            self._running += 1
            await job.emit(
                {"event": RUNNING, "job": job.id, "t": time.time()}
            )
            try:
                row = await asyncio.to_thread(self._runner, job.config)
            except BaseException as exc:  # noqa: BLE001 - isolation seam
                await self._finish(
                    job, error=f"{type(exc).__name__}: {exc}"
                )
            else:
                if row.ok:
                    await self._finish(job, row=row)
                else:
                    await self._finish(job, error=row.error, row=row)
            finally:
                self._running -= 1

    async def _finish(
        self,
        job: Job,
        *,
        row: ConfigResult | None = None,
        error: str | None = None,
    ) -> None:
        if error is None and row is not None:
            job.state = DONE
            job.cached = row.cached
            job.wall_s = row.wall_s
            job.gflops = row.gflops
            job.result = row.result
            self.completed += 1
            final = {
                "event": DONE,
                "job": job.id,
                "key": job.key,
                "cached": job.cached,
                "wall_s": job.wall_s,
                "gflops": job.gflops,
                "result": job.result,
                "t": time.time(),
            }
        else:
            job.state = FAILED
            job.error = error or "unknown failure"
            self.failed += 1
            final = {
                "event": FAILED,
                "job": job.id,
                "key": job.key,
                "error": job.error,
                "t": time.time(),
            }
        if self.on_finish is not None:
            self.on_finish(job)
        await job.emit(final)

    def _prune(self) -> None:
        """Cap the finished-job history at :data:`MAX_FINISHED_JOBS`."""
        finished = [j for j in self._jobs.values() if j.finished]
        for job in finished[: max(0, len(finished) - MAX_FINISHED_JOBS)]:
            self._jobs.pop(job.id, None)
