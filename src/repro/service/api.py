"""Request validation: JSON bodies in, typed configs (or errors) out.

The service's wire format is deliberately thin: a ``POST /v1/predict``
body is exactly the JSON form of a
:class:`~repro.campaign.spec.RunConfig` (app x machine x P x executor
x kernel backend x seed x params ...) plus one transport knob,
``wait`` — so a request *is* a campaign cell, shares the campaign's
SHA-256 content key, and therefore shares its cache entries and its
in-flight coalescing identity for free.

Validation happens here, before anything is queued: an unknown app,
machine, executor, or kernel backend is a client error (HTTP 400 with
the choices listed), never a failed job discovered minutes later in a
worker process.
"""

from __future__ import annotations

from typing import Any

from ..campaign.spec import RunConfig
from ..harness.apps import APPLICATIONS
from ..kernels import backend_names
from ..machines.catalog import MACHINES, get_machine
from ..runtime.executors import get_executor


class ApiError(Exception):
    """A client-visible request error with its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def parse_predict(body: Any) -> tuple[RunConfig, bool]:
    """Validate a ``/v1/predict`` body into ``(config, wait)``.

    ``wait`` (default ``True``) keeps the HTTP request open until the
    prediction resolves; ``False`` returns ``202`` with a job id to
    poll/stream via ``GET /v1/jobs/<id>``.
    """
    if not isinstance(body, dict):
        raise ApiError(400, "request body must be a JSON object")
    body = dict(body)
    wait = body.pop("wait", True)
    if not isinstance(wait, bool):
        raise ApiError(400, "'wait' must be a boolean")
    if not body.get("app"):
        raise ApiError(
            400,
            "'app' is required; available: "
            + ", ".join(sorted(APPLICATIONS)),
        )
    try:
        config = RunConfig.from_dict(body)
    except (TypeError, ValueError) as exc:
        raise ApiError(400, f"bad predict request: {exc}") from None
    _validate_config(config)
    return config, wait


def _validate_config(config: RunConfig) -> None:
    """Reject axis values the campaign worker would choke on."""
    if config.app not in APPLICATIONS:
        raise ApiError(
            400,
            f"unknown application {config.app!r}; available: "
            + ", ".join(sorted(APPLICATIONS)),
        )
    if config.machine is not None:
        try:
            get_machine(config.machine)
        except KeyError:
            raise ApiError(
                400,
                f"unknown machine {config.machine!r}; available: "
                + ", ".join(sorted(MACHINES)),
            ) from None
    try:
        get_executor(config.executor)
    except (TypeError, ValueError) as exc:
        raise ApiError(400, str(exc)) from None
    if config.kernel_backend not in backend_names():
        raise ApiError(
            400,
            f"unknown kernel backend {config.kernel_backend!r}; "
            "available: " + ", ".join(sorted(backend_names())),
        )
    if config.nprocs is not None and config.nprocs < 1:
        raise ApiError(400, "'nprocs' must be >= 1")
