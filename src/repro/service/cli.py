"""``repro-service`` — serve what-if predictions; pre-warm the cache.

Usage::

    repro-service serve --port 8177 --cache-dir .repro-cache
    repro-service serve --scheduler processes:4 --workers 4
    repro-service warm                       # built-in popular cells
    repro-service warm --spec sweep.json     # any CampaignSpec file
    python -m repro.service.cli serve

``serve`` runs the asyncio front end in the foreground until SIGINT /
SIGTERM or ``POST /v1/shutdown``.  ``warm`` sweeps app x machine x P
cells into the shared content-addressed cache *before* traffic
arrives, so the service's first clients hit warm entries instead of
paying cold-computation latency; it is the campaign engine underneath
(resumable, journaled, coalesced by content key with any concurrently
running service).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
from pathlib import Path

from ..campaign.cache import ResultCache
from ..campaign.engine import default_manifest_path, run_campaign
from ..campaign.spec import CampaignSpec
from .server import ReproService

DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_PORT = 8177

#: The built-in warm-up sweep: every app at the popular small rank
#: counts, modest workloads — the cells interactive clients ask for
#: first.  ``--spec`` replaces this wholesale for real deployments.
DEFAULT_WARM_SPEC = {
    "name": "service-warm",
    "apps": ["lbmhd", "gtc", "fvcam", "paratec"],
    "nprocs": [4, 8],
    "seeds": [0],
    "steps": 1,
    "params": {
        "lbmhd": {"shape": [16, 16, 16]},
        "gtc": {"particles_per_cell": 8},
    },
}


def _cmd_serve(args) -> int:
    try:
        service = ReproService(
            args.cache_dir,
            workers=args.workers,
            scheduler=args.scheduler,
            manifest=args.manifest,
        )
    except (TypeError, ValueError) as exc:  # bad --scheduler spec
        print(f"repro-service: {exc}", file=sys.stderr)
        return 2

    async def main() -> None:
        await service.start(args.host, args.port)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, service.request_stop)
        print(
            f"repro-service: listening on http://{service.host}:"
            f"{service.port} (cache {service.cache.root}, "
            f"scheduler {service.scheduler.name}, "
            f"{service.queue.workers} job worker(s))",
            file=sys.stderr,
            flush=True,
        )
        await service.serve_until_stopped()
        print("repro-service: stopped", file=sys.stderr)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_warm(args) -> int:
    if args.spec:
        spec_path = Path(args.spec)
        try:
            spec = CampaignSpec.from_json(spec_path.read_text())
        except FileNotFoundError:
            print(f"repro-service: no such spec file: {spec_path}",
                  file=sys.stderr)
            return 2
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            print(f"repro-service: bad spec {spec_path}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        spec = CampaignSpec.from_dict(DEFAULT_WARM_SPEC)

    cache = ResultCache(args.cache_dir)
    progress = None
    if not args.quiet:
        def progress(done, total, row):
            wall = f"{row.wall_s:8.3f}s" if row.ok else "       -"
            print(
                f"[{done:>{len(str(total))}}/{total}] "
                f"{row.config.label:<40} {row.status:>6} {wall}",
                file=sys.stderr,
                flush=True,
            )

    try:
        report = run_campaign(
            spec,
            cache=cache,
            manifest=default_manifest_path(args.cache_dir, spec.name),
            scheduler=args.scheduler,
            progress=progress,
        )
    except ValueError as exc:  # bad --scheduler spec
        print(f"repro-service: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
        life = cache.lifetime_stats()
        n = len(cache)
        print(
            f"cache {cache.root}: {n} entr{'y' if n == 1 else 'ies'} warm; "
            f"lifetime {life.hits} hit(s), {life.misses} miss(es), "
            f"{life.puts} put(s)"
        )
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description=(
            "Async what-if performance-prediction service over the "
            "campaign engine."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"shared result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    common.add_argument(
        "--scheduler",
        default="processes",
        metavar="SPEC",
        help=(
            "campaign-level scheduler for cold computations: "
            "'processes[:N]' (default), 'serial', 'threads[:N]', or "
            "'distrib:HOST:PORT' (fan out to repro-distrib workers)"
        ),
    )

    p_serve = sub.add_parser(
        "serve", parents=[common],
        help="run the HTTP prediction service in the foreground",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"TCP port (default: {DEFAULT_PORT}; 0 picks a free one)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent prediction jobs (default: 2)",
    )
    p_serve.add_argument(
        "--manifest", metavar="FILE",
        help="journal path (default: <cache-dir>/service.manifest.jsonl)",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_warm = sub.add_parser(
        "warm", parents=[common],
        help="precompute popular app x machine x P cells into the cache",
    )
    p_warm.add_argument(
        "--spec", metavar="FILE",
        help="JSON CampaignSpec to sweep (default: built-in popular cells)",
    )
    p_warm.add_argument(
        "--json", action="store_true",
        help="emit the aggregated report as JSON on stdout",
    )
    p_warm.add_argument(
        "--quiet", action="store_true",
        help="suppress the live per-run progress lines (stderr)",
    )
    p_warm.set_defaults(fn=_cmd_warm)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
