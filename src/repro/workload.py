"""Machine-independent description of computational work.

A :class:`Work` record is the contract between the application layer and
the architecture models: applications (or their analytic workload
generators) describe *what* a kernel does — how many flops, how many
bytes at unit stride, how many bytes through gather/scatter, how
vectorizable it is and at what trip counts — and the processor models in
:mod:`repro.machines.processor` translate that into virtual time on a
particular platform.

The fields are exactly the axes along which the paper explains its
results: computational intensity (flops/byte), vector-operation ratio,
average vector length, irregular-access share, and library (BLAS3/FFT)
fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Work:
    """One kernel invocation's worth of computational work.

    Attributes
    ----------
    name:
        Kernel label, e.g. ``"lbmhd.collision"``; used in traces/reports.
    flops:
        Useful double-precision floating-point operations.
    bytes_unit:
        Bytes moved to/from memory with unit (or small constant) stride —
        the traffic STREAM-like bandwidth applies to.
    bytes_gather:
        Bytes moved via indexed gather/scatter (PIC charge deposition,
        table lookups); charged at the machine's irregular-access rate.
    vector_fraction:
        Fraction of ``flops`` inside vectorizable / multistreamable inner
        loops.  The remainder runs on the scalar unit of a vector machine.
    avg_vector_length:
        Mean trip count of the vectorized inner loops.  Short loops pay
        vector startup; this is the quantity FVCAM's per-latitude FFTs
        starve at high concurrency.
    blas3_fraction:
        Fraction of ``flops`` spent in vendor dense-linear-algebra or
        library-FFT kernels, charged at the machine's ``blas3_efficiency``
        instead of the loop model (PARATEC: ~0.6).
    fma_fraction:
        Fraction of ``flops`` pairable into fused multiply-adds; machines
        without FMA lose on the unpaired remainder.
    cache_fraction:
        Fraction of ``bytes_unit`` expected to be served from cache
        (temporal reuse).  Vector machines other than the X1's Ecache
        have no cache and ignore this.
    scalar_bytes_unit:
        Optional unit-stride traffic override applied on *cache-based*
        (superscalar) machines.  The paper's codes use different data
        layouts per architecture family, and cache machines additionally
        pay write-allocate fills and multi-pass sweeps; kernels whose
        cache-machine traffic genuinely differs set this.  ``None``
        means "same as ``bytes_unit``".
    gather_cache_fraction:
        Fraction of ``bytes_gather`` served from cache on cache-based
        machines (e.g. a PIC grid that fits in L2: accesses are random
        but not DRAM-resident).  Cacheless vector machines ignore it.
    """

    name: str
    flops: float
    bytes_unit: float = 0.0
    bytes_gather: float = 0.0
    scalar_bytes_unit: float | None = None
    gather_cache_fraction: float = 0.0
    vector_fraction: float = 1.0
    avg_vector_length: float = 256.0
    blas3_fraction: float = 0.0
    fma_fraction: float = 1.0
    cache_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_unit < 0 or self.bytes_gather < 0:
            raise ValueError(f"negative work in {self.name!r}")
        if self.scalar_bytes_unit is not None and self.scalar_bytes_unit < 0:
            raise ValueError(f"negative scalar traffic in {self.name!r}")
        for fld in (
            "vector_fraction",
            "blas3_fraction",
            "fma_fraction",
            "cache_fraction",
            "gather_cache_fraction",
        ):
            v = getattr(self, fld)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{fld}={v} outside [0, 1] in {self.name!r}")
        if self.avg_vector_length < 1.0:
            raise ValueError(
                f"avg_vector_length must be >= 1 in {self.name!r}"
            )

    @property
    def total_bytes(self) -> float:
        return self.bytes_unit + self.bytes_gather

    @property
    def intensity(self) -> float:
        """Computational intensity in flops per byte (inf if no traffic)."""
        if self.total_bytes == 0:
            return float("inf")
        return self.flops / self.total_bytes

    def scaled(self, factor: float) -> "Work":
        """Return the same kernel shape with flops and traffic scaled.

        Intensive properties (fractions, vector length) are preserved;
        extensive ones (flops, bytes) multiply.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(
            self,
            flops=self.flops * factor,
            bytes_unit=self.bytes_unit * factor,
            bytes_gather=self.bytes_gather * factor,
            scalar_bytes_unit=(
                None
                if self.scalar_bytes_unit is None
                else self.scalar_bytes_unit * factor
            ),
        )

    def unit_bytes_on(self, superscalar: bool) -> float:
        """Unit-stride traffic as seen by one machine family."""
        if superscalar and self.scalar_bytes_unit is not None:
            return self.scalar_bytes_unit
        return self.bytes_unit

    def combined(self, other: "Work", name: str | None = None) -> "Work":
        """Merge two kernels into one aggregate record.

        Extensive quantities add; fractional properties are flop-weighted
        averages; the average vector length is the flop-weighted harmonic
        mean (time at fixed rate-per-element is what averages linearly).
        """
        total_flops = self.flops + other.flops
        if total_flops == 0:
            w_self = 0.5
        else:
            w_self = self.flops / total_flops
        w_other = 1.0 - w_self

        def wavg(a: float, b: float) -> float:
            return w_self * a + w_other * b

        inv_vl = (
            w_self / self.avg_vector_length + w_other / other.avg_vector_length
        )
        scalar_sum = (
            None
            if self.scalar_bytes_unit is None and other.scalar_bytes_unit is None
            else (
                (self.scalar_bytes_unit if self.scalar_bytes_unit is not None else self.bytes_unit)
                + (other.scalar_bytes_unit if other.scalar_bytes_unit is not None else other.bytes_unit)
            )
        )
        return Work(
            name=name or f"{self.name}+{other.name}",
            flops=total_flops,
            bytes_unit=self.bytes_unit + other.bytes_unit,
            bytes_gather=self.bytes_gather + other.bytes_gather,
            scalar_bytes_unit=scalar_sum,
            vector_fraction=wavg(self.vector_fraction, other.vector_fraction),
            avg_vector_length=1.0 / inv_vl if inv_vl > 0 else 256.0,
            blas3_fraction=wavg(self.blas3_fraction, other.blas3_fraction),
            fma_fraction=wavg(self.fma_fraction, other.fma_fraction),
            cache_fraction=(
                (
                    self.cache_fraction * self.bytes_unit
                    + other.cache_fraction * other.bytes_unit
                )
                / (self.bytes_unit + other.bytes_unit)
                if (self.bytes_unit + other.bytes_unit) > 0
                else 0.0
            ),
        )


def combine(works: list[Work], name: str = "aggregate") -> Work:
    """Fold a list of :class:`Work` records into one aggregate record."""
    if not works:
        return Work(name=name, flops=0.0)
    acc = works[0]
    for w in works[1:]:
        acc = acc.combined(w)
    return replace(acc, name=name)


@dataclass
class WorkloadMeter:
    """Accumulates instrumented :class:`Work` while an application runs.

    Application kernels call :meth:`record` with the work they just
    performed; tests compare the accumulated totals against the analytic
    workload generators used for paper-scale predictions.
    """

    records: list[Work] | None = None

    def __post_init__(self) -> None:
        if self.records is None:
            self.records = []

    def record(self, work: Work) -> None:
        self.records.append(work)

    def total(self, name: str = "total") -> Work:
        return combine(self.records, name=name)

    def total_flops(self) -> float:
        return sum(w.flops for w in self.records)

    def by_kernel(self) -> dict[str, Work]:
        """Aggregate recorded work grouped by kernel name."""
        groups: dict[str, list[Work]] = {}
        for w in self.records:
            groups.setdefault(w.name, []).append(w)
        return {k: combine(v, name=k) for k, v in groups.items()}

    def reset(self) -> None:
        self.records.clear()
