"""Per-rank execution timelines for the simulated runtime.

Beyond the aggregate clocks, a :class:`Timeline` records every compute
kernel, communication operation, and synchronization wait as an
interval on its rank's time axis, and renders the result as an ASCII
Gantt chart — the closest thing to a parallel profiler's trace view
for the simulated machine.  Useful for seeing *why* a configuration is
slow: load imbalance shows up as wait bars, communication-bound runs
as tilde-filled rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Event kinds and their Gantt glyphs.
GLYPHS = {"compute": "#", "comm": "~", "wait": "."}


@dataclass(frozen=True)
class Event:
    """One interval on one rank's time axis."""

    rank: int
    start: float
    end: float
    label: str
    kind: str  # "compute" | "comm" | "wait"

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("event ends before it starts")
        if self.kind not in GLYPHS:
            raise ValueError(f"unknown event kind {self.kind!r}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Event store for one simulated job."""

    nprocs: int
    events: list[Event] = field(default_factory=list)

    def record(
        self, rank: int, start: float, end: float, label: str, kind: str
    ) -> None:
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"rank {rank} out of range")
        if end > start:  # zero-length events are dropped silently
            self.events.append(Event(rank, start, end, label, kind))

    def events_for(self, rank: int, kind: str | None = None) -> list[Event]:
        return [
            e
            for e in self.events
            if e.rank == rank and (kind is None or e.kind == kind)
        ]

    def total(self, kind: str, rank: int | None = None) -> float:
        """Summed duration of one kind (per rank, or across all)."""
        return sum(
            e.duration
            for e in self.events
            if e.kind == kind and (rank is None or e.rank == rank)
        )

    @property
    def span(self) -> float:
        """Latest event end (the traced job's virtual makespan)."""
        return max((e.end for e in self.events), default=0.0)

    def busy_fraction(self, rank: int) -> float:
        """Compute share of a rank's traced activity."""
        busy = self.total("compute", rank)
        everything = sum(e.duration for e in self.events_for(rank))
        return busy / everything if everything > 0 else 0.0

    def kind_shares(self) -> dict[str, float]:
        """Global time shares by kind (normalized over traced time)."""
        totals = {k: self.total(k) for k in GLYPHS}
        grand = sum(totals.values())
        if grand == 0:
            return {k: 0.0 for k in GLYPHS}
        return {k: v / grand for k, v in totals.items()}

    def render_gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart: one row per rank, '#'=compute, '~'=comm,
        '.'=wait, ' '=idle; later events overwrite earlier in a cell."""
        span = self.span
        if span == 0:
            return "(no events)"
        lines = [
            f"virtual time 0 .. {span:.3e} s   "
            f"[{GLYPHS['compute']}=compute {GLYPHS['comm']}=comm "
            f"{GLYPHS['wait']}=wait]"
        ]
        for rank in range(self.nprocs):
            row = [" "] * width
            for e in self.events_for(rank):
                lo = int(e.start / span * width)
                hi = max(lo + 1, int(e.end / span * width))
                for i in range(lo, min(hi, width)):
                    row[i] = GLYPHS[e.kind]
            lines.append(f"rank {rank:3d} |{''.join(row)}|")
        return "\n".join(lines)

    def reset(self) -> None:
        self.events.clear()
