"""Simulated message-passing runtime (in-process SPMD over NumPy)."""

from .clock import VirtualClock
from .comm import Communicator, Message, Request
from .phases import UNPHASED, PhaseBucket, PhaseLedger, PhaseScope
from .timeline import Event, Timeline
from .tracing import CommTrace

__all__ = [
    "Communicator",
    "CommTrace",
    "Event",
    "Message",
    "PhaseBucket",
    "PhaseLedger",
    "PhaseScope",
    "Request",
    "Timeline",
    "UNPHASED",
    "VirtualClock",
]
