"""Simulated message-passing runtime (in-process SPMD over NumPy)."""

from .clock import VirtualClock
from .comm import Communicator, Message, Request
from .phases import UNPHASED, PhaseBucket, PhaseLedger, PhaseScope
from .timeline import Event, Timeline
from .tracing import CommTrace
from .transport import REDUCERS, Transport

__all__ = [
    "Communicator",
    "CommTrace",
    "Event",
    "Message",
    "PhaseBucket",
    "PhaseLedger",
    "PhaseScope",
    "REDUCERS",
    "Request",
    "Timeline",
    "Transport",
    "UNPHASED",
    "VirtualClock",
]
