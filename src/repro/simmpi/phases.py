"""IPM-style per-phase accounting for the simulated runtime.

The paper's measurement discipline is an IPM profile: every run is
split into named phases (GTC's ``charge -> reduce -> field -> push ->
shift``, LBMHD's ``collision -> stream``, ...), and each phase is
attributed its compute time, communication time, synchronization wait,
byte volume, and message count — per rank.  This module is the
simulated counterpart of that instrument.

A :class:`PhaseLedger` holds one :class:`PhaseBucket` of per-rank
accumulator arrays per phase name.  The :class:`~repro.simmpi.comm.
Communicator` carries the *current phase* in a small shared box
(:class:`PhaseState`) — shared, like the clocks and the trace, between
a world communicator and every subgroup split from it, so a GTC
subgroup ``Allreduce`` lands in whatever phase the enclosing solver
opened.  Phases are scoped with a context manager::

    with comm.phase("charge"):
        ...            # every compute / exchange / collective in here
                       # is attributed to "charge"

Activity outside any scope accumulates under :data:`UNPHASED`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Phase label charged when no ``with comm.phase(...)`` scope is open.
UNPHASED = "(unphased)"


class PhaseState:
    """Shared mutable current-phase + ledger box of one communicator world."""

    __slots__ = ("current", "ledger")

    def __init__(self) -> None:
        self.current: str | None = None
        self.ledger: PhaseLedger | None = None


class PhaseScope:
    """Context manager that names the enclosing instrumentation phase.

    Re-entrant and nestable: an inner scope re-attributes its region
    (PARATEC's FFT transposes open ``fft`` inside the ``cg`` sweep), and
    the outer label is restored on exit.  Entering a scope is a couple
    of attribute writes — cheap enough to sit on every hot step.
    """

    __slots__ = ("_state", "_trace", "_name", "_prev")

    def __init__(self, state: PhaseState, trace, name: str) -> None:
        self._state = state
        self._trace = trace
        self._name = name

    def __enter__(self) -> "PhaseScope":
        self._prev = self._state.current
        self._state.current = self._name
        if self._trace is not None:
            self._trace.phase = self._name
        return self

    def __exit__(self, *exc) -> None:
        self._state.current = self._prev
        if self._trace is not None:
            self._trace.phase = self._prev


@dataclass
class PhaseBucket:
    """Per-rank accumulators of one named phase.

    ``recovery_s`` is the resilience column: virtual seconds spent
    detecting, backing off from, and repairing injected faults
    (retransmits after drops/corruption, straggler delays, checkpoint
    writes, and restart/restore after a rank failure) — time a
    fault-free run would not have charged.
    """

    nprocs: int
    compute_s: np.ndarray = field(init=False)
    comm_s: np.ndarray = field(init=False)
    wait_s: np.ndarray = field(init=False)
    recovery_s: np.ndarray = field(init=False)
    flops: np.ndarray = field(init=False)
    nbytes: np.ndarray = field(init=False)
    messages: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        for name in ("compute_s", "comm_s", "wait_s", "recovery_s",
                     "flops", "nbytes", "messages"):
            setattr(self, name, np.zeros(self.nprocs, dtype=np.float64))

    @property
    def total_seconds(self) -> float:
        """Summed rank-seconds (compute + comm + wait + recovery)."""
        return float(
            self.compute_s.sum()
            + self.comm_s.sum()
            + self.wait_s.sum()
            + self.recovery_s.sum()
        )

    def as_record(self, steps: int = 1) -> dict:
        """Aggregate summary (per step when ``steps`` is given)."""
        s = max(steps, 1)
        return {
            "compute_s_mean": float(self.compute_s.mean()) / s,
            "compute_s_max": float(self.compute_s.max()) / s,
            "comm_s_mean": float(self.comm_s.mean()) / s,
            "comm_s_max": float(self.comm_s.max()) / s,
            "wait_s_mean": float(self.wait_s.mean()) / s,
            "wait_s_max": float(self.wait_s.max()) / s,
            "recovery_s_mean": float(self.recovery_s.mean()) / s,
            "recovery_s_max": float(self.recovery_s.max()) / s,
            "flops": float(self.flops.sum()) / s,
            "nbytes": float(self.nbytes.sum()) / s,
            "messages": float(self.messages.sum()) / s,
        }


class PhaseLedger:
    """Per-rank, per-phase compute/comm/wait/bytes/messages record.

    Sized to the *world* communicator; ranks are global rank ids, so
    subgroup operations (GTC's particle-subgroup ``Allreduce``, FVCAM's
    level-group transposes) attribute to the right rows.
    """

    def __init__(self, nprocs: int) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self._buckets: dict[str, PhaseBucket] = {}

    # -- recording (called from Communicator internals) -----------------

    def bucket(self, phase: str | None) -> PhaseBucket:
        key = phase if phase is not None else UNPHASED
        b = self._buckets.get(key)
        if b is None:
            b = self._buckets[key] = PhaseBucket(self.nprocs)
        return b

    def record_compute(
        self, phase: str | None, rank: int, seconds: float, flops: float = 0.0
    ) -> None:
        b = self.bucket(phase)
        b.compute_s[rank] += seconds
        b.flops[rank] += flops

    def record_comm(self, phase: str | None, rank: int, seconds: float) -> None:
        self.bucket(phase).comm_s[rank] += seconds

    def record_comm_group(
        self, phase: str | None, ranks, seconds: float
    ) -> None:
        self.bucket(phase).comm_s[list(ranks)] += seconds

    def record_wait(self, phase: str | None, rank: int, seconds: float) -> None:
        self.bucket(phase).wait_s[rank] += seconds

    def record_waits(self, phase: str | None, ranks, seconds) -> None:
        """Vector counterpart of :meth:`record_wait` (one value per rank)."""
        b = self.bucket(phase)
        np.add.at(b.wait_s, list(ranks), seconds)

    def record_recovery(
        self, phase: str | None, rank: int, seconds: float
    ) -> None:
        """Book fault-recovery time (retransmit, backoff, restore...)."""
        self.bucket(phase).recovery_s[rank] += seconds

    def record_recovery_group(
        self, phase: str | None, ranks, seconds
    ) -> None:
        """Vector counterpart of :meth:`record_recovery`.

        ``seconds`` is a scalar charged to every rank, or one value per
        rank (``np.add.at`` scatter semantics either way).
        """
        b = self.bucket(phase)
        np.add.at(b.recovery_s, list(ranks), seconds)

    def record_traffic(
        self, phase: str | None, rank: int, nbytes: float, messages: int = 1
    ) -> None:
        b = self.bucket(phase)
        b.nbytes[rank] += nbytes
        b.messages[rank] += messages

    def record_traffic_bulk(self, phase: str | None, ranks, nbytes) -> None:
        """One scatter-add for a whole batch of sends (``exchange_phase``)."""
        b = self.bucket(phase)
        idx = np.asarray(ranks, dtype=np.intp)
        np.add.at(b.nbytes, idx, np.asarray(nbytes, dtype=np.float64))
        np.add.at(b.messages, idx, 1.0)

    def record_collective(
        self, phase: str | None, ranks, nbytes_per_rank: float
    ) -> None:
        """Attribute one collective call: every rank sends ~its payload."""
        b = self.bucket(phase)
        idx = list(ranks)
        b.nbytes[idx] += nbytes_per_rank
        b.messages[idx] += 1.0

    # -- inspection ------------------------------------------------------

    @property
    def phases(self) -> list[str]:
        """Phase names in first-recorded order."""
        return list(self._buckets)

    def __getitem__(self, phase: str) -> PhaseBucket:
        return self._buckets[phase]

    def __contains__(self, phase: str) -> bool:
        return phase in self._buckets

    def totals(self) -> PhaseBucket:
        """Everything summed over phases (still per rank)."""
        out = PhaseBucket(self.nprocs)
        for b in self._buckets.values():
            out.compute_s += b.compute_s
            out.comm_s += b.comm_s
            out.wait_s += b.wait_s
            out.recovery_s += b.recovery_s
            out.flops += b.flops
            out.nbytes += b.nbytes
            out.messages += b.messages
        return out

    def as_records(self, steps: int = 1) -> list[dict]:
        """One aggregate dict per phase (JSON-friendly)."""
        return [
            {"phase": name, **bucket.as_record(steps)}
            for name, bucket in self._buckets.items()
        ]

    def render(self, title: str = "", steps: int = 1) -> str:
        """ASCII per-phase table (per step when ``steps`` is given)."""
        lines = []
        if title:
            lines.append(title)
        lines.append(
            f"{'phase':<14} {'compute ms':>11} {'comm ms':>9} "
            f"{'sync ms':>9} {'recov ms':>9} {'MB':>9} {'msgs':>8}"
        )
        total = PhaseBucket(self.nprocs)
        for name in self.phases:
            r = self._buckets[name].as_record(steps)
            lines.append(
                f"{name:<14} {r['compute_s_mean'] * 1e3:>11.3f} "
                f"{r['comm_s_mean'] * 1e3:>9.3f} "
                f"{r['wait_s_mean'] * 1e3:>9.3f} "
                f"{r['recovery_s_mean'] * 1e3:>9.3f} "
                f"{r['nbytes'] / 1e6:>9.3f} {r['messages']:>8.0f}"
            )
        t = self.totals().as_record(steps)
        lines.append(
            f"{'total':<14} {t['compute_s_mean'] * 1e3:>11.3f} "
            f"{t['comm_s_mean'] * 1e3:>9.3f} "
            f"{t['wait_s_mean'] * 1e3:>9.3f} "
            f"{t['recovery_s_mean'] * 1e3:>9.3f} "
            f"{t['nbytes'] / 1e6:>9.3f} {t['messages']:>8.0f}"
        )
        return "\n".join(lines)

    def reset(self) -> None:
        self._buckets.clear()
