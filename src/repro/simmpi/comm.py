"""In-process simulated MPI: SPMD over decomposed NumPy arrays.

The four applications in :mod:`repro.apps` are written against this
runtime exactly as they would be against mpi4py: rank-local arrays,
point-to-point exchanges, subcommunicators, ``Allreduce`` and
``Alltoallv``.  The difference is that all ranks live in one Python
process — the communicator *actually moves the bytes* between rank-local
buffers (so the numerics are exact and decomposition-independence is
testable), while per-rank virtual clocks are advanced by the platform's
processor, memory and network cost models.

Passing ``machine=None`` yields an *ideal* communicator: data still
moves and traces still record, but no time is charged — this is the mode
the correctness tests run in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..machines.processor import ProcessorModel, make_model
from ..machines.spec import MachineSpec
from ..network.collectives import CollectiveModel
from ..network.model import NetworkModel
from ..workload import Work, WorkloadMeter
from .clock import VirtualClock
from .phases import PhaseLedger, PhaseScope, PhaseState
from .timeline import Timeline
from .tracing import CommTrace

_REDUCERS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


@dataclass(frozen=True)
class Message:
    """One point-to-point message: local src rank -> local dst rank."""

    src: int
    dst: int
    payload: np.ndarray
    tag: int = 0

    @property
    def nbytes(self) -> int:
        return int(self.payload.nbytes)


@dataclass
class Request:
    """Handle for a posted nonblocking send (completed by ``waitall``)."""

    comm: "Communicator"
    message: Message
    done: bool = False
    data: np.ndarray | None = None

    def _complete(self, delivered: np.ndarray) -> None:
        self.done = True
        self.data = delivered

    def test(self) -> bool:
        return self.done


class Communicator:
    """A group of simulated ranks sharing clocks, trace, and cost models.

    Parameters
    ----------
    nprocs:
        Number of ranks in (the world of) this communicator.
    machine:
        Platform whose cost models charge virtual time; ``None`` for an
        ideal zero-cost network/processor (pure-numerics mode).
    trace:
        Record per-pair communication volumes (Figure 2 instrumentation).
    timeline:
        Record per-rank compute/comm/wait intervals (Gantt profiling).
    loop_registers:
        Register-demand hint forwarded to the vector processor model.
    """

    def __init__(
        self,
        nprocs: int,
        machine: MachineSpec | None = None,
        trace: bool = False,
        timeline: bool = False,
        loop_registers: float | None = None,
    ) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.machine = machine
        self._ranks: list[int] = list(range(nprocs))
        self._clock = VirtualClock(nprocs)
        self._trace = CommTrace(nprocs) if trace else None
        self._timeline = Timeline(nprocs) if timeline else None
        self._meter = WorkloadMeter()
        self._pending: list[Request] = []
        self._world: Communicator = self
        self._phase = PhaseState()
        if machine is not None:
            self._proc: ProcessorModel | None = make_model(
                machine, loop_registers=loop_registers
            )
            self._net: NetworkModel | None = NetworkModel(machine, nprocs)
            self._coll: CollectiveModel | None = CollectiveModel(self._net)
        else:
            self._proc = None
            self._net = None
            self._coll = None

    # -- construction of subgroups ------------------------------------

    @classmethod
    def _subgroup(cls, world: "Communicator", ranks: list[int]) -> "Communicator":
        sub = cls.__new__(cls)
        sub.machine = world.machine
        sub._ranks = list(ranks)
        sub._clock = world._clock
        sub._trace = world._trace
        sub._timeline = world._timeline
        sub._meter = world._meter
        sub._pending = []
        sub._proc = world._proc
        sub._net = world._net
        sub._coll = world._coll
        sub._world = world._world
        sub._phase = world._phase
        return sub

    def split(self, colors: Sequence[int]) -> list["Communicator"]:
        """Partition this communicator by color, as ``MPI_Comm_split``.

        ``colors[i]`` is the color of local rank ``i``; returns one
        subcommunicator per distinct color, ordered by color value.
        Local ranks within each subgroup follow the parent's rank order.
        """
        if len(colors) != self.nprocs:
            raise ValueError("need one color per rank")
        groups: dict[int, list[int]] = {}
        for local, color in enumerate(colors):
            groups.setdefault(color, []).append(self._ranks[local])
        return [
            Communicator._subgroup(self._world, groups[c])
            for c in sorted(groups)
        ]

    # -- introspection --------------------------------------------------

    @property
    def nprocs(self) -> int:
        return len(self._ranks)

    @property
    def ranks(self) -> list[int]:
        """Global rank ids of this communicator's members."""
        return list(self._ranks)

    @property
    def trace(self) -> CommTrace | None:
        return self._trace

    @property
    def timeline(self) -> Timeline | None:
        return self._timeline

    @property
    def meter(self) -> WorkloadMeter:
        return self._meter

    # -- IPM-style phase instrumentation -------------------------------

    def phase(self, name: str) -> PhaseScope:
        """Scope for attributing activity to a named phase.

        ``with comm.phase("charge"): ...`` labels every compute charge,
        point-to-point exchange, and collective issued inside the block
        — including those on subcommunicators split from this world —
        so the attached :class:`~repro.simmpi.phases.PhaseLedger` and
        the :class:`~repro.simmpi.tracing.CommTrace` can split the run
        the way the paper's IPM profiles do.  Without a ledger the
        scope is two attribute writes (safe on hot paths).
        """
        return PhaseScope(self._phase, self._trace, name)

    def attach_phase_ledger(
        self, ledger: PhaseLedger | None = None
    ) -> PhaseLedger:
        """Start per-phase accounting; returns the (shared) ledger.

        The ledger is sized to the world communicator and shared with
        every subgroup, whether split before or after this call.
        """
        if ledger is None:
            ledger = PhaseLedger(self._world.nprocs)
        elif ledger.nprocs != self._world.nprocs:
            raise ValueError(
                f"ledger sized for {ledger.nprocs} ranks, world has "
                f"{self._world.nprocs}"
            )
        self._phase.ledger = ledger
        return ledger

    def detach_phase_ledger(self) -> None:
        self._phase.ledger = None

    @property
    def phase_ledger(self) -> PhaseLedger | None:
        return self._phase.ledger

    @property
    def current_phase(self) -> str | None:
        return self._phase.current

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock so far (slowest rank of the world)."""
        return self._clock.elapsed

    def time(self, local_rank: int) -> float:
        return self._clock.time(self._ranks[local_rank])

    @property
    def times(self) -> np.ndarray:
        return self._clock.times[self._ranks]

    def imbalance(self) -> float:
        return self._clock.imbalance()

    def _g(self, local_rank: int) -> int:
        return self._ranks[local_rank]

    # -- compute ---------------------------------------------------------

    def compute(self, local_rank: int, work: Work) -> float:
        """Charge one rank for a kernel; returns the seconds charged."""
        self._meter.record(work)
        ledger = self._phase.ledger
        if self._proc is None:
            if ledger is not None:
                ledger.record_compute(
                    self._phase.current, self._g(local_rank), 0.0, work.flops
                )
            return 0.0
        dt = self._proc.time(work)
        g = self._g(local_rank)
        t0 = self._clock.time(g)
        self._clock.advance(g, dt)
        if self._timeline is not None:
            self._timeline.record(g, t0, t0 + dt, work.name, "compute")
        if ledger is not None:
            ledger.record_compute(self._phase.current, g, dt, work.flops)
        return dt

    def compute_all(self, work_per_rank: Sequence[Work]) -> float:
        """Charge every rank its own work; returns the max time charged."""
        if len(work_per_rank) != self.nprocs:
            raise ValueError("need one Work per rank")
        return max(self.compute(r, w) for r, w in enumerate(work_per_rank))

    # -- point-to-point ----------------------------------------------------

    def exchange(
        self, messages: Sequence[Message], copy: bool = True
    ) -> dict[int, list[np.ndarray]]:
        """Execute a phase of point-to-point messages.

        All messages are posted "simultaneously" (non-blocking), then
        completed: each sender's clock advances by its serialized send
        costs; each receiver's clock waits for the latest arrival.
        Returns ``{dst_local_rank: [payload, ...]}`` in posting order.

        With ``copy=True`` (the default) payloads are copied, so
        senders may reuse their buffers.  ``copy=False`` is the
        zero-copy fast path: the posted payload objects themselves are
        delivered, which is only safe when the sender does not mutate
        them before the receiver is done (the halo exchange sends
        freshly sliced planes, so it qualifies).
        """
        received: dict[int, list[np.ndarray]] = {}
        depart_base = {m.src: self._clock.time(self._g(m.src)) for m in messages}
        send_accum: dict[int, float] = {}
        arrivals: dict[int, float] = {}
        ledger = self._phase.ledger
        phase = self._phase.current

        for m in messages:
            if not (0 <= m.src < self.nprocs and 0 <= m.dst < self.nprocs):
                raise IndexError(f"message rank out of range: {m.src}->{m.dst}")
            if self._trace is not None:
                self._trace.record(self._g(m.src), self._g(m.dst), m.nbytes)
            if ledger is not None:
                ledger.record_traffic(phase, self._g(m.src), m.nbytes)
            received.setdefault(m.dst, []).append(
                np.array(m.payload, copy=True) if copy else m.payload
            )
            if self._net is None:
                continue
            cost = self._net.ptp_time(m.nbytes, self._g(m.src), self._g(m.dst))
            send_accum[m.src] = send_accum.get(m.src, 0.0) + cost
            arrival = depart_base[m.src] + send_accum[m.src]
            arrivals[m.dst] = max(arrivals.get(m.dst, 0.0), arrival)

        if self._net is not None:
            for src, dt in send_accum.items():
                g = self._g(src)
                t0 = self._clock.time(g)
                self._clock.advance(g, dt)
                if self._timeline is not None:
                    self._timeline.record(g, t0, t0 + dt, "send", "comm")
                if ledger is not None:
                    ledger.record_comm(phase, g, dt)
            for dst, t_arr in arrivals.items():
                g = self._g(dst)
                wait = t_arr - self._clock.time(g)
                if wait > 0:
                    t0 = self._clock.time(g)
                    self._clock.advance(g, wait)
                    if self._timeline is not None:
                        self._timeline.record(
                            g, t0, t0 + wait, "recv", "wait"
                        )
                    if ledger is not None:
                        ledger.record_wait(phase, g, wait)
        return received

    def exchange_phase(
        self,
        srcs: Sequence[int],
        dsts: Sequence[int],
        nbytes: int | Sequence[int],
    ) -> None:
        """Accounting-only counterpart of :meth:`exchange`.

        Charges the exact clock/trace bookkeeping that
        ``exchange([Message(srcs[k], dsts[k], <nbytes[k] payload>), ...])``
        would, without constructing messages or moving data — the caller
        has already moved the bytes in bulk (e.g. one strided copy over
        a whole stacked rank block).  Message order is the sequence
        order, which fixes the per-sender serialization exactly as the
        legacy per-message loop did.
        """
        srcs_a = np.asarray(srcs, dtype=np.intp)
        dsts_a = np.asarray(dsts, dtype=np.intp)
        if srcs_a.shape != dsts_a.shape:
            raise ValueError("srcs and dsts must have equal length")
        nbytes_a = np.broadcast_to(
            np.asarray(nbytes, dtype=np.int64), srcs_a.shape
        )
        if srcs_a.size and (
            min(srcs_a.min(), dsts_a.min()) < 0
            or max(srcs_a.max(), dsts_a.max()) >= self.nprocs
        ):
            raise IndexError("message rank out of range")
        ledger = self._phase.ledger
        phase = self._phase.current
        if self._trace is not None or ledger is not None:
            g_srcs = [self._g(int(s)) for s in srcs_a]
            if self._trace is not None:
                self._trace.record_pairs(
                    g_srcs,
                    [self._g(int(d)) for d in dsts_a],
                    nbytes_a,
                )
            if ledger is not None and srcs_a.size:
                ledger.record_traffic_bulk(phase, g_srcs, nbytes_a)
        if self._net is None:
            return
        depart_base = {
            int(s): self._clock.time(self._g(int(s))) for s in srcs_a
        }
        send_accum: dict[int, float] = {}
        arrivals: dict[int, float] = {}
        for s, d, nb in zip(srcs_a, dsts_a, nbytes_a):
            s, d = int(s), int(d)
            cost = self._net.ptp_time(int(nb), self._g(s), self._g(d))
            send_accum[s] = send_accum.get(s, 0.0) + cost
            arrivals[d] = max(
                arrivals.get(d, 0.0), depart_base[s] + send_accum[s]
            )
        for src, dt in send_accum.items():
            g = self._g(src)
            t0 = self._clock.time(g)
            self._clock.advance(g, dt)
            if self._timeline is not None:
                self._timeline.record(g, t0, t0 + dt, "send", "comm")
            if ledger is not None:
                ledger.record_comm(phase, g, dt)
        for dst, t_arr in arrivals.items():
            g = self._g(dst)
            wait = t_arr - self._clock.time(g)
            if wait > 0:
                t0 = self._clock.time(g)
                self._clock.advance(g, wait)
                if self._timeline is not None:
                    self._timeline.record(g, t0, t0 + wait, "recv", "wait")
                if ledger is not None:
                    ledger.record_wait(phase, g, wait)

    def sendrecv(
        self, src: int, dst: int, payload: np.ndarray
    ) -> np.ndarray:
        """Single message convenience wrapper around :meth:`exchange`."""
        out = self.exchange([Message(src=src, dst=dst, payload=payload)])
        return out[dst][0]

    # -- nonblocking-style API -----------------------------------------

    def isend(
        self, src: int, dst: int, payload: np.ndarray, tag: int = 0
    ) -> "Request":
        """Post a message for a later :meth:`waitall` (MPI_Isend style).

        The payload is captured (copied) at post time, so the sender
        may immediately reuse its buffer — eager-protocol semantics.
        """
        req = Request(
            comm=self,
            message=Message(
                src=src, dst=dst, payload=np.array(payload, copy=True), tag=tag
            ),
        )
        self._pending.append(req)
        return req

    def waitall(self) -> dict[int, list[np.ndarray]]:
        """Complete every pending :meth:`isend` as one exchange phase.

        Returns the same ``{dst: [payload, ...]}`` map as
        :meth:`exchange` and marks all requests complete (each request's
        :attr:`Request.data` is filled for receives addressed to it).
        """
        pending = self._pending
        self._pending = []
        if not pending:
            return {}
        received = self.exchange([r.message for r in pending])
        counters: dict[int, int] = {}
        for req in pending:
            i = counters.get(req.message.dst, 0)
            counters[req.message.dst] = i + 1
            req._complete(received[req.message.dst][i])
        return received

    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    # -- collectives ---------------------------------------------------------

    def barrier(self) -> None:
        cost = self._coll.barrier(self.nprocs) if self._coll else 0.0
        self._timed_collective("barrier", cost)

    def allreduce(
        self, contributions: Sequence[np.ndarray], op: str = "sum"
    ) -> list[np.ndarray]:
        """All-reduce one array per rank; every rank receives the result.

        Mirrors GTC's particle-subgroup ``Allreduce``: contributions are
        combined elementwise with ``op`` and each rank gets a private
        copy of the reduced array.
        """
        if len(contributions) != self.nprocs:
            raise ValueError("need one contribution per rank")
        reducer = _REDUCERS.get(op)
        if reducer is None:
            raise KeyError(f"unknown reduction {op!r}; have {sorted(_REDUCERS)}")
        result = np.array(contributions[0], copy=True)
        for arr in contributions[1:]:
            if arr.shape != result.shape:
                raise ValueError("allreduce contributions must share a shape")
            if np.can_cast(arr.dtype, result.dtype, casting="same_kind"):
                reducer(result, arr, out=result)  # accumulate in place
            else:
                result = reducer(result, arr)

        self._record_butterfly(result.nbytes, kind="allreduce")
        cost = (
            self._coll.allreduce(result.nbytes, self.nprocs)
            if self._coll
            else 0.0
        )
        self._timed_collective("allreduce", cost, result.nbytes)
        # One broadcast copy into a stacked block; each rank's private
        # result is its own row (disjoint, independently mutable).
        if result.ndim == 0:
            return [result.copy() for _ in range(self.nprocs)]
        stacked = np.empty((self.nprocs, *result.shape), dtype=result.dtype)
        stacked[...] = result
        return list(stacked)

    def alltoallv(
        self, sendbufs: Sequence[Sequence[np.ndarray]], copy: bool = True
    ) -> list[list[np.ndarray]]:
        """Personalized all-to-all: ``sendbufs[i][j]`` goes from i to j.

        Returns ``recv[j][i]`` — the PARATEC FFT transpose and the FVCAM
        dynamics-to-remap transpose are both built on this.

        With ``copy=True`` every received block is backed by fresh
        memory (one contiguous pack per sender rather than ``P x P``
        individual array copies).  ``copy=False`` is the zero-copy fast
        path: the send blocks themselves are handed to the receivers,
        which is safe only when the sender does not reuse them (the FFT
        transposes build fresh blocks every call, so they qualify).
        """
        p = self.nprocs
        if len(sendbufs) != p or any(len(row) != p for row in sendbufs):
            raise ValueError("sendbufs must be a PxP nested sequence")
        rows = [[np.asarray(b) for b in row] for row in sendbufs]
        if copy:
            # Pack each sender's row into one contiguous buffer and hand
            # out reshaped views: one allocation + one pass per sender.
            recv_by_sender: list[list[np.ndarray]] = []
            for row in rows:
                if len({b.dtype.str for b in row}) != 1:
                    # mixed dtypes cannot share one packed buffer
                    recv_by_sender.append([b.copy() for b in row])
                    continue
                sizes = [b.size for b in row]
                flat = (
                    np.concatenate([b.reshape(-1) for b in row])
                    if sum(sizes)
                    else np.empty(0, dtype=row[0].dtype)
                )
                offs = np.cumsum([0] + sizes)
                recv_by_sender.append(
                    [
                        flat[offs[j] : offs[j + 1]].reshape(row[j].shape)
                        for j in range(p)
                    ]
                )
            recv = [[recv_by_sender[i][j] for i in range(p)] for j in range(p)]
        else:
            recv = [[rows[i][j] for i in range(p)] for j in range(p)]

        volumes = np.array(
            [[b.nbytes for b in row] for row in rows], dtype=np.float64
        )
        total = float(volumes.sum())
        if self._trace is not None:
            self._trace.record_block(self._ranks, volumes, "alltoall")
        cost = 0.0
        if self._coll is not None and p > 1:
            cost = self._coll.alltoall(total / (p * p), p)
        self._timed_collective("alltoall", cost, total / max(p, 1))
        return recv

    def allgather(
        self, contributions: Sequence[np.ndarray], copy: bool = True
    ) -> list[list[np.ndarray]]:
        """Every rank receives every rank's contribution (in rank order).

        Homogeneous contributions are stacked once and replicated with
        one block copy per rank instead of ``P x P`` array copies.
        ``copy=False`` shares a single stacked block between all ranks
        (read-only fast path: receivers must not mutate the views).
        """
        if len(contributions) != self.nprocs:
            raise ValueError("need one contribution per rank")
        nbytes = sum(int(c.nbytes) for c in contributions)
        if self._trace is not None:
            self._record_butterfly(nbytes / max(self.nprocs, 1), "allgather")
        cost = 0.0
        if self._coll is not None and self.nprocs > 1:
            cost = self._coll.allgather(nbytes, self.nprocs)
        self._timed_collective("allgather", cost, nbytes / max(self.nprocs, 1))

        homogeneous = (
            len({(c.shape, c.dtype.str) for c in contributions}) == 1
            and contributions[0].ndim > 0
        )
        if homogeneous:
            base = np.stack(contributions)
            if not copy:
                shared = list(base)
                return [shared for _ in range(self.nprocs)]
            return [list(base.copy()) for _ in range(self.nprocs)]
        return [
            [np.array(c, copy=True) for c in contributions]
            for _ in range(self.nprocs)
        ]

    def reduce_scatter(
        self, contributions: Sequence[np.ndarray], op: str = "sum"
    ) -> list[np.ndarray]:
        """Element-wise reduce, then scatter equal blocks by rank.

        Each rank contributes a full-length array and receives the
        reduced values of its own 1/P block (flattened views; the block
        split follows ``np.array_split`` semantics).
        """
        if len(contributions) != self.nprocs:
            raise ValueError("need one contribution per rank")
        reducer = _REDUCERS.get(op)
        if reducer is None:
            raise KeyError(f"unknown reduction {op!r}; have {sorted(_REDUCERS)}")
        total = np.array(contributions[0], copy=True)
        for arr in contributions[1:]:
            if arr.shape != total.shape:
                raise ValueError("contributions must share a shape")
            if np.can_cast(arr.dtype, total.dtype, casting="same_kind"):
                reducer(total, arr, out=total)
            else:
                total = reducer(total, arr)
        blocks = np.array_split(total.ravel(), self.nprocs)

        if self._trace is not None:
            self._record_butterfly(total.nbytes / self.nprocs, "reduce_scatter")
        cost = 0.0
        if self._coll is not None and self.nprocs > 1:
            # half the allreduce: log p rounds, n bytes total
            cost = 0.5 * self._coll.allreduce(total.nbytes, self.nprocs)
        self._timed_collective("reduce_scatter", cost, total.nbytes)
        return [b.copy() for b in blocks]

    def scan(
        self, contributions: Sequence[np.ndarray], op: str = "sum"
    ) -> list[np.ndarray]:
        """Inclusive prefix reduction: rank r gets reduce(ranks 0..r)."""
        if len(contributions) != self.nprocs:
            raise ValueError("need one contribution per rank")
        reducer = _REDUCERS.get(op)
        if reducer is None:
            raise KeyError(f"unknown reduction {op!r}; have {sorted(_REDUCERS)}")
        out: list[np.ndarray] = []
        acc: np.ndarray | None = None
        for arr in contributions:
            if acc is None:
                acc = np.array(arr, copy=True)
            elif np.can_cast(arr.dtype, acc.dtype, casting="same_kind"):
                reducer(acc, arr, out=acc)
            else:
                acc = reducer(acc, arr)
            out.append(acc.copy())
        if self._trace is not None and self.nprocs > 1:
            for r in range(self.nprocs - 1):
                self._trace.record(
                    self._g(r), self._g(r + 1), contributions[0].nbytes, "scan"
                )
        cost = 0.0
        if self._coll is not None and self.nprocs > 1:
            cost = self._coll.allreduce(contributions[0].nbytes, self.nprocs)
        self._timed_collective("scan", cost, contributions[0].nbytes)
        return out

    def gather(self, contributions: Sequence[np.ndarray], root: int = 0) -> list[np.ndarray]:
        """Gather one array per rank onto ``root`` (returned as a list)."""
        if len(contributions) != self.nprocs:
            raise ValueError("need one contribution per rank")
        nbytes = sum(int(c.nbytes) for c in contributions)
        if self._trace is not None:
            for i, c in enumerate(contributions):
                if i != root:
                    self._trace.record(self._g(i), self._g(root), c.nbytes, "gather")
        cost = 0.0
        if self._coll is not None and self.nprocs > 1:
            # Root-bound binomial-tree gather (NOT a broadcast: the
            # root must absorb nearly the whole payload).
            cost = self._coll.gather(nbytes, self.nprocs)
        self._timed_collective("gather", cost, nbytes / max(self.nprocs, 1))
        return [np.array(c, copy=True) for c in contributions]

    def _timed_collective(
        self, label: str, cost: float, nbytes_per_rank: float = 0.0
    ) -> None:
        """Synchronize the group (wait) then charge a collective (comm).

        ``nbytes_per_rank`` is the payload volume the phase ledger
        attributes to every participating rank (one message each) —
        the per-rank share of the collective's traffic.
        """
        ledger = self._phase.ledger
        phase = self._phase.current
        if self._timeline is not None:
            pre = {g: self._clock.time(g) for g in self._ranks}
        t_sync, waits = self._clock.synchronize_with_waits(self._ranks)
        if self._timeline is not None:
            for g in self._ranks:
                self._timeline.record(g, pre[g], t_sync, label, "wait")
        if ledger is not None:
            ledger.record_waits(phase, self._ranks, waits)
            if nbytes_per_rank > 0:
                ledger.record_collective(phase, self._ranks, nbytes_per_rank)
        if cost > 0:
            self._clock.advance_group(self._ranks, cost)
            if self._timeline is not None:
                for g in self._ranks:
                    self._timeline.record(
                        g, t_sync, t_sync + cost, label, "comm"
                    )
            if ledger is not None:
                ledger.record_comm_group(phase, self._ranks, cost)

    # -- internals ---------------------------------------------------------

    def _record_butterfly(self, nbytes: float, kind: str) -> None:
        """Trace the recursive-doubling pattern of a collective."""
        if self._trace is None or self.nprocs == 1:
            return
        p = self.nprocs
        step = 1
        while step < p:
            for i in range(p):
                j = i ^ step
                if j < p and i < j:
                    self._trace.record(self._g(i), self._g(j), nbytes, kind)
                    self._trace.record(self._g(j), self._g(i), nbytes, kind)
            step <<= 1

    def reset_clock(self) -> None:
        self._clock.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mach = self.machine.name if self.machine else "ideal"
        return f"Communicator(nprocs={self.nprocs}, machine={mach})"
