"""In-process simulated MPI: SPMD over decomposed NumPy arrays.

The four applications in :mod:`repro.apps` are written against this
runtime exactly as they would be against mpi4py: rank-local arrays,
point-to-point exchanges, subcommunicators, ``Allreduce`` and
``Alltoallv``.  The difference is that all ranks live in one Python
process — the communicator *actually moves the bytes* between rank-local
buffers (so the numerics are exact and decomposition-independence is
testable), while per-rank virtual clocks are advanced by the platform's
processor, memory and network cost models.

The :class:`Communicator` itself is a facade over four composed layers:

* :class:`~repro.simmpi.transport.Transport` — pure byte movement;
* :class:`~repro.simmpi.clock.VirtualClock` — per-rank virtual time;
* :class:`~repro.simmpi.tracing.CommTrace` /
  :class:`~repro.simmpi.phases.PhaseLedger` — IPM-style instrumentation;
* :class:`~repro.runtime.executors.Executor` — how per-rank compute
  segments are scheduled (serial lockstep, a thread pool, or forked
  worker processes over shared-memory arenas), reached through
  :meth:`Communicator.map_ranks`.

Passing ``machine=None`` yields an *ideal* communicator: data still
moves and traces still record, but no time is charged — this is the mode
the correctness tests run in.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from ..machines.processor import ProcessorModel, make_model
from ..machines.spec import MachineSpec
from ..network.collectives import CollectiveModel
from ..network.model import NetworkModel
from ..resilience.policy import (
    RecoveryStats,
    RetryPolicy,
    UnrecoverableMessageError,
    payload_crc,
)
from ..runtime.executors import Executor, SerialExecutor, get_executor
from ..workload import Work, WorkloadMeter
from .clock import VirtualClock
from .phases import PhaseLedger, PhaseScope, PhaseState
from .timeline import Timeline
from .tracing import CommTrace
from .transport import REDUCERS, Transport, get_reducer

_R = TypeVar("_R")

# Back-compat alias: the reducer table now lives with the transport.
_REDUCERS = REDUCERS

# One warning per (executor, reason): an ambient REPRO_EXECUTOR=processes
# on an incapable host should not drown a test suite in repeats.
_FALLBACK_WARNED: set[str] = set()


def _warn_segment_fallback(name: str, reason: str) -> None:
    key = f"{name}:{reason}"
    if key in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(key)
    warnings.warn(
        f"executor {name!r} cannot run rank segments here ({reason}); "
        "this communicator falls back to serial segment scheduling",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class Message:
    """One point-to-point message: local src rank -> local dst rank."""

    src: int
    dst: int
    payload: np.ndarray
    tag: int = 0

    @property
    def nbytes(self) -> int:
        return int(self.payload.nbytes)


@dataclass
class Request:
    """Handle for a posted nonblocking send (completed by ``waitall``)."""

    comm: "Communicator"
    message: Message
    done: bool = False
    data: np.ndarray | None = None

    def _complete(self, delivered: np.ndarray) -> None:
        self.done = True
        self.data = delivered

    def test(self) -> bool:
        return self.done


class _ExecState:
    """Executor + parallel-region state shared by world and subgroups.

    Lives in one box (like :class:`PhaseState`) so a subgroup split
    before or after a ``map_ranks`` region sees the same region flag:
    compute charged on a subcommunicator inside a segment defers like
    compute charged on the world, and communication attempted on either
    is rejected.

    ``tls.buffer`` is the calling thread's deferred-work buffer; it is
    only set while that thread is running a segment, so charges from
    concurrent segments land in disjoint per-segment lists without a
    lock (list.append is atomic under the GIL either way).
    """

    __slots__ = ("executor", "active", "tls")

    def __init__(self, executor: Executor) -> None:
        self.executor = executor
        self.active = False
        self.tls = threading.local()


class _ResilState:
    """Shared resilience box of one communicator world.

    Like :class:`PhaseState`: one mutable object referenced by the
    world and every subgroup, whenever they were split, so a fault plan
    enabled on the world also governs subgroup traffic.  ``injector``
    is ``None`` until :meth:`Communicator.enable_resilience`; the
    policy and stats always exist (checkpoint charging works without a
    fault plan).
    """

    __slots__ = ("injector", "policy", "stats")

    def __init__(self) -> None:
        self.injector = None
        self.policy = RetryPolicy()
        self.stats = RecoveryStats()


class Communicator:
    """A group of simulated ranks sharing clocks, trace, and cost models.

    Parameters
    ----------
    nprocs:
        Number of ranks in (the world of) this communicator.
    machine:
        Platform whose cost models charge virtual time; ``None`` for an
        ideal zero-cost network/processor (pure-numerics mode).
    trace:
        Record per-pair communication volumes (Figure 2 instrumentation).
    timeline:
        Record per-rank compute/comm/wait intervals (Gantt profiling).
    loop_registers:
        Register-demand hint forwarded to the vector processor model.
    executor:
        How :meth:`map_ranks` schedules per-rank compute segments: an
        :class:`~repro.runtime.executors.Executor`, a spec string
        (``"serial"``, ``"threads[:N]"``, ``"processes[:N]"``), or
        ``None`` to resolve via
        :func:`~repro.runtime.executors.get_executor` (process default,
        then ``REPRO_EXECUTOR``, then serial).  Process executors need
        fork + POSIX shared memory (``segment_support``): an explicit
        incapable spec raises; an ambient one falls back to serial with
        a warning.  Executor choice never changes results — only
        wall-clock.
    """

    def __init__(
        self,
        nprocs: int,
        machine: MachineSpec | None = None,
        trace: bool = False,
        timeline: bool = False,
        loop_registers: float | None = None,
        executor: "Executor | str | None" = None,
    ) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.machine = machine
        self._ranks: list[int] = list(range(nprocs))
        self._transport = Transport()
        self._clock = VirtualClock(nprocs)
        self._trace = CommTrace(nprocs) if trace else None
        self._timeline = Timeline(nprocs) if timeline else None
        self._meter = WorkloadMeter()
        self._pending: list[Request] = []
        self._world: Communicator = self
        self._phase = PhaseState()
        resolved = get_executor(executor)
        if not resolved.in_process:
            support = resolved.segment_support()
            if not support.ok:
                if executor is None:
                    # ambient choice (process default or REPRO_EXECUTOR):
                    # degrade to serial rather than break the caller
                    _warn_segment_fallback(resolved.name, support.reason)
                    resolved = SerialExecutor()
                else:
                    raise ValueError(
                        f"{resolved.name!r} cannot schedule per-rank "
                        f"compute segments on this host: {support.reason}. "
                        "Use 'serial' or 'threads[:N]' here — campaign-"
                        "level scheduling with process workers still "
                        "works (see repro.campaign)"
                    )
        self._exec = _ExecState(resolved)
        self._resil = _ResilState()
        if machine is not None:
            self._proc: ProcessorModel | None = make_model(
                machine, loop_registers=loop_registers
            )
            self._net: NetworkModel | None = NetworkModel(machine, nprocs)
            self._coll: CollectiveModel | None = CollectiveModel(self._net)
        else:
            self._proc = None
            self._net = None
            self._coll = None

    # -- construction of subgroups ------------------------------------

    @classmethod
    def _subgroup(cls, world: "Communicator", ranks: list[int]) -> "Communicator":
        sub = cls.__new__(cls)
        sub.machine = world.machine
        sub._ranks = list(ranks)
        sub._transport = world._transport
        sub._clock = world._clock
        sub._trace = world._trace
        sub._timeline = world._timeline
        sub._meter = world._meter
        sub._pending = []
        sub._proc = world._proc
        sub._net = world._net
        sub._coll = world._coll
        sub._world = world._world
        sub._phase = world._phase
        sub._exec = world._exec
        sub._resil = world._resil
        return sub

    def split(self, colors: Sequence[int]) -> list["Communicator"]:
        """Partition this communicator by color, as ``MPI_Comm_split``.

        ``colors[i]`` is the color of local rank ``i``; returns one
        subcommunicator per distinct color, ordered by color value.
        Local ranks within each subgroup follow the parent's rank order.
        """
        if len(colors) != self.nprocs:
            raise ValueError("need one color per rank")
        groups: dict[int, list[int]] = {}
        for local, color in enumerate(colors):
            groups.setdefault(color, []).append(self._ranks[local])
        return [
            Communicator._subgroup(self._world, groups[c])
            for c in sorted(groups)
        ]

    # -- introspection --------------------------------------------------

    @property
    def nprocs(self) -> int:
        return len(self._ranks)

    @property
    def ranks(self) -> list[int]:
        """Global rank ids of this communicator's members."""
        return list(self._ranks)

    @property
    def trace(self) -> CommTrace | None:
        return self._trace

    @property
    def timeline(self) -> Timeline | None:
        return self._timeline

    @property
    def meter(self) -> WorkloadMeter:
        return self._meter

    @property
    def executor(self) -> Executor:
        """The executor scheduling :meth:`map_ranks` segments."""
        return self._exec.executor

    # -- IPM-style phase instrumentation -------------------------------

    def phase(self, name: str) -> PhaseScope:
        """Scope for attributing activity to a named phase.

        ``with comm.phase("charge"): ...`` labels every compute charge,
        point-to-point exchange, and collective issued inside the block
        — including those on subcommunicators split from this world —
        so the attached :class:`~repro.simmpi.phases.PhaseLedger` and
        the :class:`~repro.simmpi.tracing.CommTrace` can split the run
        the way the paper's IPM profiles do.  Without a ledger the
        scope is two attribute writes (safe on hot paths).
        """
        self._require_serial_region("phase")
        return PhaseScope(self._phase, self._trace, name)

    def attach_phase_ledger(
        self, ledger: PhaseLedger | None = None
    ) -> PhaseLedger:
        """Start per-phase accounting; returns the (shared) ledger.

        The ledger is sized to the world communicator and shared with
        every subgroup, whether split before or after this call.
        """
        if ledger is None:
            ledger = PhaseLedger(self._world.nprocs)
        elif ledger.nprocs != self._world.nprocs:
            raise ValueError(
                f"ledger sized for {ledger.nprocs} ranks, world has "
                f"{self._world.nprocs}"
            )
        self._phase.ledger = ledger
        return ledger

    def detach_phase_ledger(self) -> None:
        self._phase.ledger = None

    @property
    def phase_ledger(self) -> PhaseLedger | None:
        return self._phase.ledger

    @property
    def current_phase(self) -> str | None:
        return self._phase.current

    # -- resilience seam -------------------------------------------------

    def enable_resilience(self, injector, policy: RetryPolicy | None = None):
        """Install a fault injector (and optionally a retry policy).

        ``injector`` is a :class:`~repro.resilience.inject.FaultInjector`
        or a :class:`~repro.resilience.inject.FaultPlan` (wrapped around
        this communicator's transport).  Point-to-point payloads then
        flow through the injector; drops and CRC-detected corruption
        are retransmitted with exponential backoff, latency spikes are
        absorbed — every repair second charged to the virtual clock and
        the phase ledger's ``recovery`` column.  Shared with all
        subgroups of this world.  Returns the installed injector.
        """
        from ..resilience.inject import FaultInjector, FaultPlan

        if isinstance(injector, FaultPlan):
            injector = FaultInjector(injector, transport=self._transport)
        resil = self._resil
        resil.injector = injector
        if policy is not None:
            resil.policy = policy
        return injector

    def disable_resilience(self) -> None:
        """Remove the fault injector (policy and stats are kept)."""
        self._resil.injector = None

    @property
    def fault_injector(self):
        return self._resil.injector

    @property
    def retry_policy(self) -> RetryPolicy:
        return self._resil.policy

    @property
    def recovery_stats(self) -> RecoveryStats:
        return self._resil.stats

    def _check_rank_failure(self) -> None:
        """Fire a scheduled rank death at this communication point."""
        inj = self._resil.injector
        if inj is not None:
            inj.check_rank_failure()

    def _charge_recovery(
        self, g_ranks, seconds: float, phase: str | None,
        label: str = "recovery",
    ) -> None:
        """Advance clocks and book time in the recovery column."""
        if seconds <= 0.0:
            return
        ledger = self._phase.ledger
        stats = self._resil.stats
        for g in g_ranks:
            t0 = self._clock.time(g)
            self._clock.advance(g, seconds)
            if self._timeline is not None:
                self._timeline.record(g, t0, t0 + seconds, label, "recovery")
            if ledger is not None:
                ledger.record_recovery(phase, g, seconds)
            stats.recovery_rank_seconds += seconds

    def charge_checkpoint(self, nbytes: int) -> float:
        """Charge every rank the virtual cost of writing one checkpoint.

        The harness calls this when it snapshots a
        :class:`~repro.resilience.checkpoint.Checkpointable` solver;
        the per-rank seconds (aggregate ``nbytes`` over the policy's
        checkpoint bandwidth) land in the recovery column.  Returns the
        per-rank seconds charged.
        """
        stats = self._resil.stats
        dt = self._resil.policy.checkpoint_time(nbytes, self.nprocs)
        self._charge_recovery(self._ranks, dt, self._phase.current,
                              label="checkpoint")
        stats.checkpoints += 1
        stats.checkpoint_bytes += float(nbytes)
        return dt

    def recover_restart(self, nbytes: int) -> float:
        """Charge a rank-failure recovery: sync, penalty, restore read.

        All ranks synchronize (the failed collective everyone notices),
        then pay the policy's flat restart penalty plus the restore
        read of ``nbytes`` checkpoint bytes.  Every second lands in the
        recovery column.  Returns the per-rank seconds charged after
        the synchronization.
        """
        resil = self._resil
        phase = self._phase.current
        _, waits = self._clock.synchronize_with_waits(self._ranks)
        ledger = self._phase.ledger
        if ledger is not None:
            ledger.record_recovery_group(phase, self._ranks, waits)
        resil.stats.recovery_rank_seconds += float(waits.sum())
        dt = resil.policy.restart_penalty + resil.policy.restore_time(
            nbytes, self.nprocs
        )
        self._charge_recovery(self._ranks, dt, phase, label="restart")
        resil.stats.restarts += 1
        return dt

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock so far (slowest rank of the world)."""
        return self._clock.elapsed

    def time(self, local_rank: int) -> float:
        return self._clock.time(self._ranks[local_rank])

    @property
    def times(self) -> np.ndarray:
        return self._clock.times[self._ranks]

    def imbalance(self) -> float:
        return self._clock.imbalance()

    def _g(self, local_rank: int) -> int:
        return self._ranks[local_rank]

    # -- executor seam ---------------------------------------------------

    def map_ranks(
        self,
        fn: Callable[[int], _R],
        indices: Iterable[int] | None = None,
    ) -> list[_R]:
        """Run independent per-rank compute segments via the executor.

        ``fn(index)`` is called once per index (default: every local
        rank), possibly concurrently, and the results are returned in
        index order.  Segments are *compute only*: they may mutate
        rank-local state and charge :meth:`compute`, but any
        communication (exchange, collectives, phase changes) raises
        ``RuntimeError`` — communication belongs between regions, where
        rank order is deterministic.

        Determinism contract: while the region runs, every ``compute``
        charge is deferred into the calling segment's buffer instead of
        touching the meter/clock/ledger; when all segments finish, the
        charges are replayed in segment order — exactly the order a
        serial ``for`` loop would have produced.  Serial, threaded and
        process executors therefore yield bitwise-identical clocks,
        traces, ledgers and meters; only real wall-clock differs.  A
        region that raises charges nothing.

        Out-of-process executors run segments in forked workers; their
        deferred charges are marshalled back over a pipe and replayed
        in the same serialized order (see
        :meth:`_map_ranks_marshalled`).  Segments scheduled that way
        must return their effects (or write through shared-memory
        arenas) — in-place mutation of ordinary parent memory dies with
        the child.
        """
        exec_state = self._exec
        if exec_state.active:
            raise RuntimeError("map_ranks regions cannot nest")
        idx = list(range(self.nprocs)) if indices is None else list(indices)
        if not idx:
            return []
        if not exec_state.executor.in_process:
            return self._map_ranks_marshalled(fn, idx)
        buffers: list[list[tuple[int, Work]]] = [[] for _ in idx]
        tls = exec_state.tls

        def segment(job: tuple[int, int]) -> _R:
            i, index = job
            tls.buffer = buffers[i]
            try:
                return fn(index)
            finally:
                tls.buffer = None

        exec_state.active = True
        try:
            results = exec_state.executor.map(segment, list(enumerate(idx)))
        finally:
            exec_state.active = False
            tls.buffer = None
        for buf in buffers:
            for g, work in buf:
                self._charge_compute(g, work)
        return results

    def _map_ranks_marshalled(
        self, fn: Callable[[int], _R], idx: list[int]
    ) -> list[_R]:
        """Out-of-process region: forked segments, charges replayed home.

        In-process executors append deferred charges straight into
        parent-owned buffers; a forked segment's appends die with the
        child.  Here each segment runs with a fresh private buffer and
        returns ``(result, buffer)`` through the worker pipe; the
        parent then replays the charges in segment order — the same
        serialized posting order the in-process path uses — so
        meters/clocks/ledgers/traces stay bitwise-identical to serial.
        """
        exec_state = self._exec
        tls = exec_state.tls

        def segment(job: tuple[int, int]) -> tuple[_R, list]:
            i, index = job
            buf: list[tuple[int, Work]] = []
            tls.buffer = buf
            try:
                return fn(index), buf
            finally:
                tls.buffer = None

        exec_state.active = True
        try:
            outcomes = exec_state.executor.map_segments(
                segment, list(enumerate(idx))
            )
        finally:
            exec_state.active = False
            tls.buffer = None
        results: list[_R] = []
        for result, buf in outcomes:
            results.append(result)
            for g, work in buf:
                self._charge_compute(g, work)
        return results

    def _require_serial_region(self, opname: str) -> None:
        if self._exec.active:
            raise RuntimeError(
                f"{opname} is not allowed inside a map_ranks parallel "
                "region; segments are compute-only — communicate between "
                "regions"
            )

    # -- compute ---------------------------------------------------------

    def compute(self, local_rank: int, work: Work) -> float:
        """Charge one rank for a kernel; returns the seconds charged.

        Inside a :meth:`map_ranks` region the charge is deferred (and
        replayed in deterministic order at region end); the returned
        duration is the same either way, since the processor model is a
        pure function of the work record.
        """
        exec_state = self._exec
        if exec_state.active:
            buf = getattr(exec_state.tls, "buffer", None)
            if buf is None:
                raise RuntimeError(
                    "compute called during a map_ranks region from outside "
                    "any segment"
                )
            buf.append((self._g(local_rank), work))
            return self._proc.time(work) if self._proc is not None else 0.0
        return self._charge_compute(self._g(local_rank), work)

    def _charge_compute(self, g: int, work: Work) -> float:
        """Meter/clock/timeline/ledger bookkeeping for one charge."""
        self._meter.record(work)
        ledger = self._phase.ledger
        if self._proc is None:
            if ledger is not None:
                ledger.record_compute(self._phase.current, g, 0.0, work.flops)
            return 0.0
        dt = self._proc.time(work)
        t0 = self._clock.time(g)
        self._clock.advance(g, dt)
        if self._timeline is not None:
            self._timeline.record(g, t0, t0 + dt, work.name, "compute")
        if ledger is not None:
            ledger.record_compute(self._phase.current, g, dt, work.flops)
        return dt

    def compute_all(self, work_per_rank: Sequence[Work]) -> float:
        """Charge every rank its own work; returns the max time charged."""
        if len(work_per_rank) != self.nprocs:
            raise ValueError("need one Work per rank")
        return max(self.compute(r, w) for r, w in enumerate(work_per_rank))

    # -- point-to-point ----------------------------------------------------

    def exchange(
        self, messages: Sequence[Message], copy: bool = True
    ) -> dict[int, list[np.ndarray]]:
        """Execute a phase of point-to-point messages.

        All messages are posted "simultaneously" (non-blocking), then
        completed: each sender's clock advances by its serialized send
        costs; each receiver's clock waits for the latest arrival.
        Returns ``{dst_local_rank: [payload, ...]}`` in posting order.

        Zero-byte messages are legitimate (empty halos on degenerate
        decompositions): they deliver an empty payload, count as one
        message in the trace, and cost pure latency on the wire.  An
        empty message list is a no-op.

        With ``copy=True`` (the default) payloads are copied, so
        senders may reuse their buffers.  ``copy=False`` is the
        zero-copy fast path: the posted payload objects themselves are
        delivered, which is only safe when the sender does not mutate
        them before the receiver is done (the halo exchange sends
        freshly sliced planes, so it qualifies).
        """
        self._require_serial_region("exchange")
        if not messages:
            return {}
        for m in messages:
            if not (0 <= m.src < self.nprocs and 0 <= m.dst < self.nprocs):
                raise IndexError(f"message rank out of range: {m.src}->{m.dst}")
        if self._resil.injector is not None:
            return self._exchange_resilient(list(messages), copy)
        received = self._transport.deliver(messages, copy=copy)
        ledger = self._phase.ledger
        phase = self._phase.current
        for m in messages:
            if self._trace is not None:
                self._trace.record(self._g(m.src), self._g(m.dst), m.nbytes)
            if ledger is not None:
                ledger.record_traffic(phase, self._g(m.src), m.nbytes)
        if self._net is not None:
            self._charge_ptp_phase(
                [(m.src, m.dst, m.nbytes) for m in messages]
            )
        return received

    def _exchange_resilient(
        self, messages: list[Message], copy: bool
    ) -> dict[int, list[np.ndarray]]:
        """:meth:`exchange` through the fault injector, self-healing.

        The first transmission charges exactly what the fault-free path
        would (same trace/ledger/clock arithmetic), so an empty fault
        plan is accounting-neutral.  Every delivered payload is then
        verified against its sender-side CRC-32; a missing payload
        (drop) or a mismatch (bit-flip) is retransmitted with
        exponential backoff until it arrives intact, the extra time
        booked in the recovery column.  Posting order per destination
        is preserved across retransmits, so callers that index
        ``received[dst]`` positionally are unaffected by faults.

        A scheduled rank death fires here at entry, before anything is
        charged — the same point :meth:`exchange_phase` and the
        collectives die at — so the clocks a failed step leaves behind
        do not depend on which communication path a solver variant
        takes.
        """
        self._check_rank_failure()
        resil = self._resil
        inj, policy, stats = resil.injector, resil.policy, resil.stats
        ledger = self._phase.ledger
        phase = self._phase.current
        n = len(messages)
        crcs = [payload_crc(m.payload) for m in messages]
        granks = [(self._g(m.src), self._g(m.dst)) for m in messages]

        for k, m in enumerate(messages):
            if self._trace is not None:
                self._trace.record(granks[k][0], granks[k][1], m.nbytes)
            if ledger is not None:
                ledger.record_traffic(phase, granks[k][0], m.nbytes)
        if self._net is not None:
            self._charge_ptp_phase(
                [(m.src, m.dst, m.nbytes) for m in messages]
            )

        slots: list[np.ndarray | None] = [None] * n
        attempts = [0] * n
        pending = list(range(n))
        while pending:
            outcomes = inj.deliver_faulty(
                [messages[i] for i in pending],
                phase=phase,
                attempts=[attempts[i] for i in pending],
                granks=[granks[i] for i in pending],
                copy=copy,
            )
            failed: list[int] = []
            for j, i in enumerate(pending):
                out = outcomes[j]
                g_src, g_dst = granks[i]
                if out.payload is None:
                    # drop: the receiver only notices after a timeout
                    stats.drops_detected += 1
                    self._charge_recovery(
                        [g_dst], policy.detect_timeout, phase, "detect"
                    )
                    failed.append(i)
                elif payload_crc(out.payload) != crcs[i]:
                    # corruption: caught by the checksum on arrival
                    stats.corruptions_detected += 1
                    self._charge_recovery(
                        [g_dst], policy.nack_time, phase, "nack"
                    )
                    failed.append(i)
                else:
                    if out.extra_s > 0.0:
                        stats.delays_absorbed += 1
                        self._charge_recovery(
                            [g_dst], out.extra_s, phase, "straggler"
                        )
                    slots[i] = out.payload
            if not failed:
                break
            for i in failed:
                attempts[i] += 1
                if attempts[i] > policy.max_retries:
                    m = messages[i]
                    raise UnrecoverableMessageError(
                        f"message {m.src}->{m.dst} ({m.nbytes} B) still "
                        f"failing after {policy.max_retries} retransmits"
                    )
                g_src, g_dst = granks[i]
                nb = messages[i].nbytes
                wire = (
                    self._net.ptp_time(nb, g_src, g_dst)
                    if self._net is not None
                    else 0.0
                )
                backoff = policy.backoff(attempts[i])
                self._charge_recovery(
                    [g_src], backoff + wire, phase, "resend"
                )
                self._charge_recovery(
                    [g_dst], backoff + wire, phase, "resend-wait"
                )
                stats.resends += 1
                stats.resend_bytes += nb
                if self._trace is not None:
                    self._trace.record(g_src, g_dst, nb, "resend")
                if ledger is not None:
                    ledger.record_traffic(phase, g_src, nb)
            pending = failed
        received: dict[int, list[np.ndarray]] = {}
        for i, m in enumerate(messages):
            payload = slots[i]
            assert payload is not None
            received.setdefault(m.dst, []).append(payload)
        return received

    def exchange_phase(
        self,
        srcs: Sequence[int],
        dsts: Sequence[int],
        nbytes: int | Sequence[int],
    ) -> None:
        """Accounting-only counterpart of :meth:`exchange`.

        Charges the exact clock/trace bookkeeping that
        ``exchange([Message(srcs[k], dsts[k], <nbytes[k] payload>), ...])``
        would, without constructing messages or moving data — the caller
        has already moved the bytes in bulk (e.g. one strided copy over
        a whole stacked rank block).  Message order is the sequence
        order, which fixes the per-sender serialization exactly as the
        legacy per-message loop did.

        ``nbytes`` is either one size for every message or a sequence
        with exactly one size per message; anything else (including the
        shapes NumPy broadcasting would quietly accept) is a
        ``ValueError``.  Zero sizes are legitimate; empty ``srcs`` /
        ``dsts`` is a no-op.
        """
        self._require_serial_region("exchange_phase")
        srcs_a = np.asarray(srcs, dtype=np.intp).reshape(-1)
        dsts_a = np.asarray(dsts, dtype=np.intp).reshape(-1)
        if srcs_a.shape != dsts_a.shape:
            raise ValueError(
                f"srcs and dsts must have equal length: "
                f"{srcs_a.size} vs {dsts_a.size}"
            )
        nbytes_in = np.asarray(nbytes, dtype=np.int64)
        if nbytes_in.ndim == 0:
            nbytes_a = np.full(srcs_a.shape, int(nbytes_in), dtype=np.int64)
        elif nbytes_in.shape == srcs_a.shape:
            nbytes_a = nbytes_in
        else:
            raise ValueError(
                f"nbytes must be a scalar or one size per message: got "
                f"{nbytes_in.size} sizes for {srcs_a.size} messages"
            )
        if nbytes_a.size and nbytes_a.min() < 0:
            raise ValueError("message sizes must be >= 0")
        if srcs_a.size == 0:
            return
        if (
            min(srcs_a.min(), dsts_a.min()) < 0
            or max(srcs_a.max(), dsts_a.max()) >= self.nprocs
        ):
            raise IndexError("message rank out of range")
        self._check_rank_failure()
        ledger = self._phase.ledger
        phase = self._phase.current
        if self._trace is not None or ledger is not None:
            g_srcs = [self._g(int(s)) for s in srcs_a]
            if self._trace is not None:
                self._trace.record_pairs(
                    g_srcs,
                    [self._g(int(d)) for d in dsts_a],
                    nbytes_a,
                )
            if ledger is not None:
                ledger.record_traffic_bulk(phase, g_srcs, nbytes_a)
        if self._net is not None:
            self._charge_ptp_phase(
                [
                    (int(s), int(d), int(nb))
                    for s, d, nb in zip(srcs_a, dsts_a, nbytes_a)
                ]
            )
        if self._resil.injector is not None:
            self._account_phase_faults(
                [
                    (self._g(int(s)), self._g(int(d)))
                    for s, d in zip(srcs_a, dsts_a)
                ],
                nbytes_a,
            )

    def _account_phase_faults(
        self, granks: list[tuple[int, int]], nbytes_a: np.ndarray
    ) -> None:
        """Accounting-only recovery charges for bulk-moved messages.

        :meth:`exchange_phase` callers moved their bytes out-of-band
        (one strided block copy), so an injected fault cannot touch the
        data — but the wire the accounting models still flakes.  Each
        faulted message charges its detection + one backed-off
        retransmit (latency spikes charge their delay), mirroring what
        :meth:`_exchange_resilient` books for a ``repeat=1`` fault.
        """
        from ..resilience.inject import LatencySpike, MessageDrop

        resil = self._resil
        inj, policy, stats = resil.injector, resil.policy, resil.stats
        ledger = self._phase.ledger
        phase = self._phase.current
        for k, spec in inj.judge_phase(
            phase=phase, granks=granks, nbytes=nbytes_a
        ):
            g_src, g_dst = granks[k]
            nb = int(nbytes_a[k])
            if isinstance(spec, LatencySpike):
                stats.delays_absorbed += 1
                self._charge_recovery(
                    [g_dst], spec.extra_s, phase, "straggler"
                )
                continue
            if isinstance(spec, MessageDrop):
                stats.drops_detected += 1
                detect = policy.detect_timeout
            else:
                stats.corruptions_detected += 1
                detect = policy.nack_time
            wire = (
                self._net.ptp_time(nb, g_src, g_dst)
                if self._net is not None
                else 0.0
            )
            backoff = policy.backoff(1)
            self._charge_recovery(
                [g_src], backoff + wire, phase, "resend"
            )
            self._charge_recovery(
                [g_dst], detect + backoff + wire, phase, "resend-wait"
            )
            stats.resends += 1
            stats.resend_bytes += nb
            if self._trace is not None:
                self._trace.record(g_src, g_dst, nb, "resend")
            if ledger is not None:
                ledger.record_traffic(phase, g_src, nb)

    def _charge_ptp_phase(
        self, triples: Sequence[tuple[int, int, int]]
    ) -> None:
        """Clock/timeline/ledger charging for one point-to-point phase.

        ``triples`` is ``(src_local, dst_local, nbytes)`` in posting
        order.  Senders serialize their own sends; receivers wait for
        their latest arrival.  Shared by :meth:`exchange` (which moved
        real payloads) and :meth:`exchange_phase` (accounting only).
        """
        ledger = self._phase.ledger
        phase = self._phase.current
        depart_base = {
            s: self._clock.time(self._g(s)) for s, _, _ in triples
        }
        send_accum: dict[int, float] = {}
        arrivals: dict[int, float] = {}
        for s, d, nb in triples:
            cost = self._net.ptp_time(nb, self._g(s), self._g(d))
            send_accum[s] = send_accum.get(s, 0.0) + cost
            arrivals[d] = max(
                arrivals.get(d, 0.0), depart_base[s] + send_accum[s]
            )
        for src, dt in send_accum.items():
            g = self._g(src)
            t0 = self._clock.time(g)
            self._clock.advance(g, dt)
            if self._timeline is not None:
                self._timeline.record(g, t0, t0 + dt, "send", "comm")
            if ledger is not None:
                ledger.record_comm(phase, g, dt)
        for dst, t_arr in arrivals.items():
            g = self._g(dst)
            wait = t_arr - self._clock.time(g)
            if wait > 0:
                t0 = self._clock.time(g)
                self._clock.advance(g, wait)
                if self._timeline is not None:
                    self._timeline.record(g, t0, t0 + wait, "recv", "wait")
                if ledger is not None:
                    ledger.record_wait(phase, g, wait)

    def sendrecv(
        self, src: int, dst: int, payload: np.ndarray
    ) -> np.ndarray:
        """Single message convenience wrapper around :meth:`exchange`."""
        out = self.exchange([Message(src=src, dst=dst, payload=payload)])
        return out[dst][0]

    # -- nonblocking-style API -----------------------------------------

    def isend(
        self, src: int, dst: int, payload: np.ndarray, tag: int = 0
    ) -> "Request":
        """Post a message for a later :meth:`waitall` (MPI_Isend style).

        The payload is captured (copied) at post time, so the sender
        may immediately reuse its buffer — eager-protocol semantics.
        """
        self._require_serial_region("isend")
        req = Request(
            comm=self,
            message=Message(
                src=src, dst=dst, payload=np.array(payload, copy=True), tag=tag
            ),
        )
        self._pending.append(req)
        return req

    def waitall(self) -> dict[int, list[np.ndarray]]:
        """Complete every pending :meth:`isend` as one exchange phase.

        Returns the same ``{dst: [payload, ...]}`` map as
        :meth:`exchange` and marks all requests complete (each request's
        :attr:`Request.data` is filled for receives addressed to it).
        """
        self._require_serial_region("waitall")
        pending = self._pending
        self._pending = []
        if not pending:
            return {}
        received = self.exchange([r.message for r in pending])
        counters: dict[int, int] = {}
        for req in pending:
            i = counters.get(req.message.dst, 0)
            counters[req.message.dst] = i + 1
            req._complete(received[req.message.dst][i])
        return received

    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    # -- collectives ---------------------------------------------------------

    def barrier(self) -> None:
        cost = self._coll.barrier(self.nprocs) if self._coll else 0.0
        self._timed_collective("barrier", cost)

    def allreduce(
        self, contributions: Sequence[np.ndarray], op: str = "sum"
    ) -> list[np.ndarray]:
        """All-reduce one array per rank; every rank receives the result.

        Mirrors GTC's particle-subgroup ``Allreduce``: contributions are
        combined elementwise with ``op`` and each rank gets a private
        copy of the reduced array.
        """
        if len(contributions) != self.nprocs:
            raise ValueError("need one contribution per rank")
        result = self._transport.reduce(contributions, op)
        self._record_butterfly(result.nbytes, kind="allreduce")
        cost = (
            self._coll.allreduce(result.nbytes, self.nprocs)
            if self._coll
            else 0.0
        )
        self._timed_collective("allreduce", cost, result.nbytes)
        return self._transport.replicate(result, self.nprocs)

    def alltoallv(
        self, sendbufs: Sequence[Sequence[np.ndarray]], copy: bool = True
    ) -> list[list[np.ndarray]]:
        """Personalized all-to-all: ``sendbufs[i][j]`` goes from i to j.

        Returns ``recv[j][i]`` — the PARATEC FFT transpose and the FVCAM
        dynamics-to-remap transpose are both built on this.

        With ``copy=True`` every received block is backed by fresh
        memory (one contiguous pack per sender rather than ``P x P``
        individual array copies).  ``copy=False`` is the zero-copy fast
        path: the send blocks themselves are handed to the receivers,
        which is safe only when the sender does not reuse them (the FFT
        transposes build fresh blocks every call, so they qualify).
        """
        p = self.nprocs
        if len(sendbufs) != p or any(len(row) != p for row in sendbufs):
            raise ValueError("sendbufs must be a PxP nested sequence")
        rows = [[np.asarray(b) for b in row] for row in sendbufs]
        recv = self._transport.alltoallv(rows, copy=copy)
        volumes = np.array(
            [[b.nbytes for b in row] for row in rows], dtype=np.float64
        )
        total = float(volumes.sum())
        if self._trace is not None:
            self._trace.record_block(self._ranks, volumes, "alltoall")
        cost = 0.0
        if self._coll is not None and p > 1:
            cost = self._coll.alltoall(total / (p * p), p)
        self._timed_collective("alltoall", cost, total / max(p, 1))
        return recv

    def allgather(
        self, contributions: Sequence[np.ndarray], copy: bool = True
    ) -> list[list[np.ndarray]]:
        """Every rank receives every rank's contribution (in rank order).

        Homogeneous contributions are stacked once and replicated with
        one block copy per rank instead of ``P x P`` array copies.
        ``copy=False`` shares a single stacked block between all ranks
        (read-only fast path: receivers must not mutate the views).
        """
        if len(contributions) != self.nprocs:
            raise ValueError("need one contribution per rank")
        nbytes = sum(int(c.nbytes) for c in contributions)
        if self._trace is not None:
            self._record_butterfly(nbytes / max(self.nprocs, 1), "allgather")
        cost = 0.0
        if self._coll is not None and self.nprocs > 1:
            cost = self._coll.allgather(nbytes, self.nprocs)
        self._timed_collective("allgather", cost, nbytes / max(self.nprocs, 1))
        return self._transport.allgather(contributions, copy=copy)

    def reduce_scatter(
        self, contributions: Sequence[np.ndarray], op: str = "sum"
    ) -> list[np.ndarray]:
        """Element-wise reduce, then scatter equal blocks by rank.

        Each rank contributes a full-length array and receives the
        reduced values of its own 1/P block (flattened views; the block
        split follows ``np.array_split`` semantics).
        """
        if len(contributions) != self.nprocs:
            raise ValueError("need one contribution per rank")
        total = self._transport.reduce(contributions, op)
        if self._trace is not None:
            self._record_butterfly(total.nbytes / self.nprocs, "reduce_scatter")
        cost = 0.0
        if self._coll is not None and self.nprocs > 1:
            # half the allreduce: log p rounds, n bytes total
            cost = 0.5 * self._coll.allreduce(total.nbytes, self.nprocs)
        self._timed_collective("reduce_scatter", cost, total.nbytes)
        return self._transport.scatter_blocks(total, self.nprocs)

    def scan(
        self, contributions: Sequence[np.ndarray], op: str = "sum"
    ) -> list[np.ndarray]:
        """Inclusive prefix reduction: rank r gets reduce(ranks 0..r)."""
        if len(contributions) != self.nprocs:
            raise ValueError("need one contribution per rank")
        get_reducer(op)  # validate before any bookkeeping
        out = self._transport.scan(contributions, op)
        if self._trace is not None and self.nprocs > 1:
            for r in range(self.nprocs - 1):
                self._trace.record(
                    self._g(r), self._g(r + 1), contributions[0].nbytes, "scan"
                )
        cost = 0.0
        if self._coll is not None and self.nprocs > 1:
            cost = self._coll.allreduce(contributions[0].nbytes, self.nprocs)
        self._timed_collective("scan", cost, contributions[0].nbytes)
        return out

    def gather(self, contributions: Sequence[np.ndarray], root: int = 0) -> list[np.ndarray]:
        """Gather one array per rank onto ``root`` (returned as a list)."""
        if len(contributions) != self.nprocs:
            raise ValueError("need one contribution per rank")
        nbytes = sum(int(c.nbytes) for c in contributions)
        if self._trace is not None:
            for i, c in enumerate(contributions):
                if i != root:
                    self._trace.record(self._g(i), self._g(root), c.nbytes, "gather")
        cost = 0.0
        if self._coll is not None and self.nprocs > 1:
            # Root-bound binomial-tree gather (NOT a broadcast: the
            # root must absorb nearly the whole payload).
            cost = self._coll.gather(nbytes, self.nprocs)
        self._timed_collective("gather", cost, nbytes / max(self.nprocs, 1))
        return self._transport.gather(contributions)

    def _timed_collective(
        self, label: str, cost: float, nbytes_per_rank: float = 0.0
    ) -> None:
        """Synchronize the group (wait) then charge a collective (comm).

        ``nbytes_per_rank`` is the payload volume the phase ledger
        attributes to every participating rank (one message each) —
        the per-rank share of the collective's traffic.
        """
        self._require_serial_region(label)
        self._check_rank_failure()
        ledger = self._phase.ledger
        phase = self._phase.current
        if self._timeline is not None:
            pre = {g: self._clock.time(g) for g in self._ranks}
        t_sync, waits = self._clock.synchronize_with_waits(self._ranks)
        if self._timeline is not None:
            for g in self._ranks:
                self._timeline.record(g, pre[g], t_sync, label, "wait")
        if ledger is not None:
            ledger.record_waits(phase, self._ranks, waits)
            if nbytes_per_rank > 0:
                ledger.record_collective(phase, self._ranks, nbytes_per_rank)
        if cost > 0:
            self._clock.advance_group(self._ranks, cost)
            if self._timeline is not None:
                for g in self._ranks:
                    self._timeline.record(
                        g, t_sync, t_sync + cost, label, "comm"
                    )
            if ledger is not None:
                ledger.record_comm_group(phase, self._ranks, cost)

    # -- internals ---------------------------------------------------------

    def _record_butterfly(self, nbytes: float, kind: str) -> None:
        """Trace the recursive-doubling pattern of a collective."""
        if self._trace is None or self.nprocs == 1:
            return
        p = self.nprocs
        step = 1
        while step < p:
            for i in range(p):
                j = i ^ step
                if j < p and i < j:
                    self._trace.record(self._g(i), self._g(j), nbytes, kind)
                    self._trace.record(self._g(j), self._g(i), nbytes, kind)
            step <<= 1

    def reset_clock(self) -> None:
        self._clock.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mach = self.machine.name if self.machine else "ideal"
        return f"Communicator(nprocs={self.nprocs}, machine={mach})"
