"""IPM-style communication tracing.

The paper's Figure 2 shows "the volume of point to point communication
between MPI processes of FVCAM", captured with the IPM profiling tool.
:class:`CommTrace` reproduces that instrument: every message the
simulated runtime moves is recorded into a dense (P x P) volume matrix,
with per-operation-kind byte and call totals alongside.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np


@dataclass
class CommTrace:
    """Accumulated communication record for one simulated job.

    When a harness phase scope is open (``with comm.phase("charge")``)
    the communicator mirrors the label into :attr:`phase`, and every
    recorded message additionally lands in the per-phase byte and call
    counters — the phase axis of the paper's IPM profiles.
    """

    nprocs: int
    volume: np.ndarray = field(init=False)
    calls: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    phase: str | None = None
    bytes_by_phase: Counter = field(default_factory=Counter)
    calls_by_phase: Counter = field(default_factory=Counter)

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.volume = np.zeros((self.nprocs, self.nprocs), dtype=np.float64)

    def record(self, src: int, dst: int, nbytes: float, kind: str = "ptp") -> None:
        """Log one message from rank ``src`` to rank ``dst``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.volume[src, dst] += nbytes
        self.calls[kind] += 1
        self.bytes_by_kind[kind] += nbytes
        if self.phase is not None:
            self.bytes_by_phase[self.phase] += nbytes
            self.calls_by_phase[self.phase] += 1

    def record_pairs(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        nbytes: np.ndarray,
        kind: str = "ptp",
    ) -> None:
        """Log a batch of messages in one call (vectorized ``record``).

        Equivalent to ``record(src[k], dst[k], nbytes[k], kind)`` for
        every ``k``, but with a single scatter-add into the volume
        matrix and one counter update.
        """
        src = np.asarray(src, dtype=np.intp)
        dst = np.asarray(dst, dtype=np.intp)
        nbytes = np.asarray(nbytes, dtype=np.float64)
        if nbytes.size and nbytes.min() < 0:
            raise ValueError("nbytes must be non-negative")
        np.add.at(self.volume, (src, dst), nbytes)
        self.calls[kind] += int(src.size)
        self.bytes_by_kind[kind] += float(nbytes.sum())
        if self.phase is not None:
            self.bytes_by_phase[self.phase] += float(nbytes.sum())
            self.calls_by_phase[self.phase] += int(src.size)

    def record_block(
        self,
        ranks: "np.ndarray | list[int]",
        volumes: np.ndarray,
        kind: str,
        include_diagonal: bool = False,
    ) -> None:
        """Log a dense all-to-all round in one call.

        ``volumes[i, j]`` bytes flow from ``ranks[i]`` to ``ranks[j]``;
        the diagonal (self-sends) is skipped unless requested, matching
        the per-pair loops the collectives used to run.
        """
        ranks = np.asarray(ranks, dtype=np.intp)
        volumes = np.asarray(volumes, dtype=np.float64)
        p = len(ranks)
        if volumes.shape != (p, p):
            raise ValueError("volumes must be (len(ranks), len(ranks))")
        if volumes.size and volumes.min() < 0:
            raise ValueError("nbytes must be non-negative")
        if include_diagonal:
            off = volumes
            pairs = p * p
        else:
            off = volumes - np.diag(np.diag(volumes))
            pairs = p * p - p
        self.volume[np.ix_(ranks, ranks)] += off
        self.calls[kind] += pairs
        self.bytes_by_kind[kind] += float(off.sum())
        if self.phase is not None:
            self.bytes_by_phase[self.phase] += float(off.sum())
            self.calls_by_phase[self.phase] += pairs

    def matrix(self) -> np.ndarray:
        """Copy of the (P x P) byte-volume matrix (Figure 2's heatmap)."""
        return self.volume.copy()

    @property
    def total_bytes(self) -> float:
        return float(self.volume.sum())

    def partners(self, rank: int) -> list[int]:
        """Ranks this rank exchanged any data with (either direction)."""
        out = np.nonzero(self.volume[rank])[0]
        inc = np.nonzero(self.volume[:, rank])[0]
        return sorted(set(out.tolist()) | set(inc.tolist()))

    def max_pair_volume(self) -> float:
        return float(self.volume.max())

    def nonzero_pairs(self) -> int:
        """Number of directed (src, dst) pairs that communicated."""
        return int(np.count_nonzero(self.volume))

    def render(self, bins: str = " .:-=+*#%@", width: int | None = None) -> str:
        """ASCII rendition of the volume heatmap (for CLI experiment output).

        Each cell maps log-volume onto the ``bins`` ramp; rows are
        senders, columns receivers, rank 0 at the top-left.
        """
        p = self.nprocs if width is None else min(width, self.nprocs)
        # Downsample by summing blocks so large P still prints.
        step = (self.nprocs + p - 1) // p
        blocks = np.add.reduceat(
            np.add.reduceat(self.volume, np.arange(0, self.nprocs, step), axis=0),
            np.arange(0, self.nprocs, step),
            axis=1,
        )
        with np.errstate(divide="ignore"):
            logv = np.where(blocks > 0, np.log10(np.maximum(blocks, 1.0)), -1.0)
        vmax = logv.max()
        lines = []
        for row in logv:
            chars = []
            for v in row:
                if v < 0:
                    chars.append(bins[0])
                else:
                    idx = int((len(bins) - 1) * (v / vmax if vmax > 0 else 1.0))
                    chars.append(bins[max(1, idx)])
            lines.append("".join(chars))
        return "\n".join(lines)

    def reset(self) -> None:
        self.volume[:] = 0.0
        self.calls.clear()
        self.bytes_by_kind.clear()
        self.bytes_by_phase.clear()
        self.calls_by_phase.clear()
