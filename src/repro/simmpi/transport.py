"""Transport: the byte-movement layer of the simulated MPI.

Everything in this module actually moves NumPy data between rank-local
buffers and nothing in it knows about clocks, traces, ledgers or cost
models — those belong to the :class:`~repro.simmpi.comm.Communicator`
facade that composes a ``Transport`` with a ``VirtualClock``, a
``CommTrace``/``PhaseLedger`` pair, and an ``Executor``.

Splitting the layers keeps two invariants testable in isolation:

* transport correctness (the right bytes end up in the right rank's
  buffer, for every collective pattern), independent of any machine
  model;
* accounting exactness (clock/trace/ledger arithmetic), independent of
  how the bytes were packed.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

REDUCERS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


def get_reducer(op: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    reducer = REDUCERS.get(op)
    if reducer is None:
        raise KeyError(f"unknown reduction {op!r}; have {sorted(REDUCERS)}")
    return reducer


class Transport:
    """Moves bytes between rank-local NumPy buffers.

    Stateless: every method takes the full set of per-rank inputs and
    returns the per-rank outputs.  Rank indices are *local* to the
    calling communicator; the facade maps them to global ranks only
    for accounting.
    """

    # -- point-to-point -------------------------------------------------

    def deliver(
        self, messages: Sequence, copy: bool = True
    ) -> dict[int, list[np.ndarray]]:
        """Hand each message's payload to its destination, posting order.

        ``copy=False`` delivers the posted payload objects themselves
        (zero-copy; safe only when senders do not reuse the buffers).
        Zero-byte payloads are delivered like any other: the receiver
        gets an empty array of the payload's dtype/shape.
        """
        received: dict[int, list[np.ndarray]] = {}
        for m in messages:
            received.setdefault(m.dst, []).append(
                np.array(m.payload, copy=True) if copy else m.payload
            )
        return received

    # -- reductions -----------------------------------------------------

    def reduce(
        self, contributions: Sequence[np.ndarray], op: str = "sum"
    ) -> np.ndarray:
        """Elementwise reduction over per-rank contributions."""
        reducer = get_reducer(op)
        result = np.array(contributions[0], copy=True)
        for arr in contributions[1:]:
            if arr.shape != result.shape:
                raise ValueError("contributions must share a shape")
            if np.can_cast(arr.dtype, result.dtype, casting="same_kind"):
                reducer(result, arr, out=result)  # accumulate in place
            else:
                result = reducer(result, arr)
        return result

    def replicate(self, result: np.ndarray, nprocs: int) -> list[np.ndarray]:
        """Private per-rank copies of a reduced array (allreduce fan-out).

        One broadcast copy into a stacked block; each rank's private
        result is its own row (disjoint, independently mutable).
        """
        if result.ndim == 0:
            return [result.copy() for _ in range(nprocs)]
        stacked = np.empty((nprocs, *result.shape), dtype=result.dtype)
        stacked[...] = result
        return list(stacked)

    def scatter_blocks(
        self, total: np.ndarray, nprocs: int
    ) -> list[np.ndarray]:
        """Equal 1/P blocks of a flattened array (reduce-scatter fan-out)."""
        return [b.copy() for b in np.array_split(total.ravel(), nprocs)]

    def scan(
        self, contributions: Sequence[np.ndarray], op: str = "sum"
    ) -> list[np.ndarray]:
        """Inclusive prefix reduction: rank r gets reduce(ranks 0..r)."""
        reducer = get_reducer(op)
        out: list[np.ndarray] = []
        acc: np.ndarray | None = None
        for arr in contributions:
            if acc is None:
                acc = np.array(arr, copy=True)
            elif np.can_cast(arr.dtype, acc.dtype, casting="same_kind"):
                reducer(acc, arr, out=acc)
            else:
                acc = reducer(acc, arr)
            out.append(acc.copy())
        return out

    # -- personalized / gather patterns --------------------------------

    def alltoallv(
        self, rows: Sequence[Sequence[np.ndarray]], copy: bool = True
    ) -> list[list[np.ndarray]]:
        """Personalized all-to-all: ``rows[i][j]`` goes from i to j.

        Returns ``recv[j][i]``.  With ``copy=True`` every received
        block is backed by fresh memory (one contiguous pack per sender
        rather than ``P x P`` individual array copies); ``copy=False``
        hands the send blocks themselves to the receivers.
        """
        p = len(rows)
        if copy:
            recv_by_sender: list[list[np.ndarray]] = []
            for row in rows:
                if len({b.dtype.str for b in row}) != 1:
                    # mixed dtypes cannot share one packed buffer
                    recv_by_sender.append([b.copy() for b in row])
                    continue
                sizes = [b.size for b in row]
                flat = (
                    np.concatenate([b.reshape(-1) for b in row])
                    if sum(sizes)
                    else np.empty(0, dtype=row[0].dtype)
                )
                offs = np.cumsum([0] + sizes)
                recv_by_sender.append(
                    [
                        flat[offs[j] : offs[j + 1]].reshape(row[j].shape)
                        for j in range(p)
                    ]
                )
            return [[recv_by_sender[i][j] for i in range(p)] for j in range(p)]
        return [[rows[i][j] for i in range(p)] for j in range(p)]

    def allgather(
        self, contributions: Sequence[np.ndarray], copy: bool = True
    ) -> list[list[np.ndarray]]:
        """Every rank receives every rank's contribution (in rank order).

        Homogeneous contributions are stacked once and replicated with
        one block copy per rank instead of ``P x P`` array copies.
        ``copy=False`` shares a single stacked block between all ranks
        (read-only fast path: receivers must not mutate the views).
        """
        nprocs = len(contributions)
        homogeneous = (
            len({(c.shape, c.dtype.str) for c in contributions}) == 1
            and contributions[0].ndim > 0
        )
        if homogeneous:
            base = np.stack(contributions)
            if not copy:
                shared = list(base)
                return [shared for _ in range(nprocs)]
            return [list(base.copy()) for _ in range(nprocs)]
        return [
            [np.array(c, copy=True) for c in contributions]
            for _ in range(nprocs)
        ]

    def gather(self, contributions: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Copies of every rank's contribution (root-side list)."""
        return [np.array(c, copy=True) for c in contributions]
