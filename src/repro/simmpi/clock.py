"""Per-rank virtual clocks for the simulated SPMD runtime.

Each rank owns a clock advanced by the compute and communication cost
models.  Synchronizing operations (barriers, collectives, paired
exchanges) align the participating clocks to their maximum before adding
the operation's cost — load imbalance between ranks therefore shows up
as wait time exactly as it would under real MPI.
"""

from __future__ import annotations

import numpy as np


class VirtualClock:
    """A vector of per-rank times, in seconds."""

    def __init__(self, nprocs: int) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self._t = np.zeros(nprocs, dtype=np.float64)

    def advance(self, rank: int, dt: float) -> None:
        """Add ``dt`` seconds to one rank's clock."""
        if dt < 0:
            raise ValueError(f"negative time increment {dt}")
        self._t[rank] += dt

    def advance_group(self, ranks, dt: float) -> None:
        """Add ``dt`` to every rank in ``ranks``."""
        if dt < 0:
            raise ValueError(f"negative time increment {dt}")
        self._t[list(ranks)] += dt

    def synchronize(self, ranks=None) -> float:
        """Align clocks (all, or a subgroup) to their max; return it."""
        idx = slice(None) if ranks is None else list(ranks)
        t_max = float(self._t[idx].max())
        self._t[idx] = t_max
        return t_max

    def synchronize_with_waits(self, ranks=None) -> tuple[float, np.ndarray]:
        """:meth:`synchronize`, also returning each rank's wait time.

        The waits (``t_max - t_rank``, in the order of ``ranks``) are
        what the phase ledger books as synchronization overhead — load
        imbalance surfacing at a collective, exactly as IPM reports it.
        """
        idx = slice(None) if ranks is None else list(ranks)
        waits = -self._t[idx]
        t_max = float(self._t[idx].max())
        self._t[idx] = t_max
        waits += t_max
        return t_max, waits

    def time(self, rank: int) -> float:
        return float(self._t[rank])

    @property
    def elapsed(self) -> float:
        """Wall-clock of the simulated job: the slowest rank's time."""
        return float(self._t.max())

    @property
    def times(self) -> np.ndarray:
        """Copy of all per-rank times."""
        return self._t.copy()

    def imbalance(self) -> float:
        """(max - min) / max, 0 for a perfectly balanced run."""
        t_max = self._t.max()
        if t_max == 0:
            return 0.0
        return float((t_max - self._t.min()) / t_max)

    def reset(self) -> None:
        self._t[:] = 0.0
