"""Sustained-performance estimation: roofline, Amdahl, calibration, reports."""

from .breakdown import PhaseBreakdown, phase_breakdown
from .amdahl import effective_rate, required_vector_fraction, speedup_limit
from .efficiency import (
    RESIDUAL_BAND,
    all_calibrations,
    get_calibration,
    set_calibration,
)
from .report import PerfResult, ResultTable, relative_to
from .roofline import Bound, Roofline, vector_length_roof
from .sensitivity import (
    SUPPORTED_PARAMS,
    app_rate_function,
    elasticity,
    perturb,
    sensitivity_profile,
)

__all__ = [
    "Bound",
    "PerfResult",
    "PhaseBreakdown",
    "RESIDUAL_BAND",
    "SUPPORTED_PARAMS",
    "ResultTable",
    "Roofline",
    "all_calibrations",
    "app_rate_function",
    "effective_rate",
    "elasticity",
    "get_calibration",
    "perturb",
    "phase_breakdown",
    "relative_to",
    "required_vector_fraction",
    "sensitivity_profile",
    "set_calibration",
    "speedup_limit",
    "vector_length_roof",
]
