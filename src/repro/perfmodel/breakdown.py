"""Per-phase time breakdowns of the modeled application steps.

The paper's analysis reasons about phases — "the computational work
directly involving the particles accounts for almost 85% of the
overhead", "much of the computation time (typically 60%) involves FFTs
and BLAS3 routines", "the global data transposes ... account for the
bulk of PARATEC's communication overhead".  This module evaluates the
modeled time of every named compute kernel and communication operation
of an application step, so those statements can be checked against the
model (and are, in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machines.catalog import get_machine
from ..machines.processor import make_model
from ..machines.spec import MachineSpec


def _app_module(app: str):
    if app == "lbmhd":
        from ..apps.lbmhd import workload
    elif app == "gtc":
        from ..apps.gtc import workload
    elif app == "paratec":
        from ..apps.paratec import workload
    elif app == "fvcam":
        from ..apps.fvcam import workload
    else:
        raise KeyError(f"unknown app {app!r}")
    return workload


@dataclass
class PhaseBreakdown:
    """Per-phase seconds for one (app, machine, scenario).

    Built either analytically (:func:`phase_breakdown`, from the
    closed-form workload models) or empirically
    (:meth:`from_ledger`, from the phase ledger an instrumented
    harness run accumulated).  The empirical form also carries the
    synchronization (load-imbalance wait) seconds per phase.
    """

    app: str
    machine: str
    compute: dict[str, float] = field(default_factory=dict)
    comm: dict[str, float] = field(default_factory=dict)
    sync: dict[str, float] = field(default_factory=dict)

    @property
    def compute_seconds(self) -> float:
        return sum(self.compute.values())

    @property
    def comm_seconds(self) -> float:
        return sum(self.comm.values())

    @property
    def sync_seconds(self) -> float:
        return sum(self.sync.values())

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds + self.sync_seconds

    def fraction(self, phase: str) -> float:
        """Share of the step spent in one named phase."""
        t = self.compute.get(phase, self.comm.get(phase))
        if t is None:
            raise KeyError(
                f"unknown phase {phase!r}; have "
                f"{sorted(self.compute) + sorted(self.comm)}"
            )
        return (t + self.sync.get(phase, 0.0)) / self.total_seconds

    @property
    def comm_fraction(self) -> float:
        return (self.comm_seconds + self.sync_seconds) / self.total_seconds

    @classmethod
    def from_ledger(
        cls,
        app: str,
        machine: str,
        ledger,
        steps: int = 1,
        reduce: str = "mean",
    ) -> PhaseBreakdown:
        """Empirical breakdown from a :class:`simmpi.PhaseLedger`.

        ``reduce`` picks the across-ranks statistic: ``"mean"`` (the
        IPM convention) or ``"max"`` (the critical path).  Seconds are
        per step.
        """
        if reduce not in ("mean", "max"):
            raise ValueError(f"reduce must be 'mean' or 'max', not {reduce!r}")
        compute: dict[str, float] = {}
        comm: dict[str, float] = {}
        sync: dict[str, float] = {}
        denom = max(steps, 1)
        for name in ledger.phases:
            bucket = ledger[name]
            stat = getattr(bucket.compute_s, reduce)
            compute[name] = float(stat()) / denom
            comm[name] = float(getattr(bucket.comm_s, reduce)()) / denom
            sync[name] = float(getattr(bucket.wait_s, reduce)()) / denom
        return cls(
            app=app, machine=machine, compute=compute, comm=comm, sync=sync
        )

    def render(self) -> str:
        lines = [
            f"{self.app} on {self.machine}: modeled step breakdown",
        ]
        total = self.total_seconds
        for name, t in sorted(
            self.compute.items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"  compute  {name:<22} {t * 1e3:9.2f} ms  "
                f"{100 * t / total:5.1f}%"
            )
        for name, t in sorted(self.comm.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"  comm     {name:<22} {t * 1e3:9.2f} ms  "
                f"{100 * t / total:5.1f}%"
            )
        for name, t in sorted(self.sync.items(), key=lambda kv: -kv[1]):
            if t <= 0.0:
                continue
            lines.append(
                f"  sync     {name:<22} {t * 1e3:9.2f} ms  "
                f"{100 * t / total:5.1f}%"
            )
        lines.append(f"  total    {'':<22} {total * 1e3:9.2f} ms")
        return "\n".join(lines)


def phase_breakdown(
    app: str, scenario, machine: str | MachineSpec
) -> PhaseBreakdown:
    """Evaluate every named phase of one application scenario."""
    spec = machine if isinstance(machine, MachineSpec) else get_machine(machine)
    workload = _app_module(app)
    model = make_model(spec)
    compute = {
        name: model.time(work)
        for name, work in workload.kernel_works(spec, scenario).items()
    }
    comm = dict(workload.comm_times(spec, scenario))
    return PhaseBreakdown(
        app=app, machine=spec.name, compute=compute, comm=comm
    )
