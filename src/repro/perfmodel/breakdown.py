"""Per-phase time breakdowns of the modeled application steps.

The paper's analysis reasons about phases — "the computational work
directly involving the particles accounts for almost 85% of the
overhead", "much of the computation time (typically 60%) involves FFTs
and BLAS3 routines", "the global data transposes ... account for the
bulk of PARATEC's communication overhead".  This module evaluates the
modeled time of every named compute kernel and communication operation
of an application step, so those statements can be checked against the
model (and are, in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machines.catalog import get_machine
from ..machines.processor import make_model
from ..machines.spec import MachineSpec


def _app_module(app: str):
    if app == "lbmhd":
        from ..apps.lbmhd import workload
    elif app == "gtc":
        from ..apps.gtc import workload
    elif app == "paratec":
        from ..apps.paratec import workload
    elif app == "fvcam":
        from ..apps.fvcam import workload
    else:
        raise KeyError(f"unknown app {app!r}")
    return workload


@dataclass
class PhaseBreakdown:
    """Modeled per-phase seconds for one (app, machine, scenario)."""

    app: str
    machine: str
    compute: dict[str, float] = field(default_factory=dict)
    comm: dict[str, float] = field(default_factory=dict)

    @property
    def compute_seconds(self) -> float:
        return sum(self.compute.values())

    @property
    def comm_seconds(self) -> float:
        return sum(self.comm.values())

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    def fraction(self, phase: str) -> float:
        """Share of the step spent in one named phase."""
        t = self.compute.get(phase, self.comm.get(phase))
        if t is None:
            raise KeyError(
                f"unknown phase {phase!r}; have "
                f"{sorted(self.compute) + sorted(self.comm)}"
            )
        return t / self.total_seconds

    @property
    def comm_fraction(self) -> float:
        return self.comm_seconds / self.total_seconds

    def render(self) -> str:
        lines = [
            f"{self.app} on {self.machine}: modeled step breakdown",
        ]
        total = self.total_seconds
        for name, t in sorted(
            self.compute.items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"  compute  {name:<22} {t * 1e3:9.2f} ms  "
                f"{100 * t / total:5.1f}%"
            )
        for name, t in sorted(self.comm.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"  comm     {name:<22} {t * 1e3:9.2f} ms  "
                f"{100 * t / total:5.1f}%"
            )
        lines.append(f"  total    {'':<22} {total * 1e3:9.2f} ms")
        return "\n".join(lines)


def phase_breakdown(
    app: str, scenario, machine: str | MachineSpec
) -> PhaseBreakdown:
    """Evaluate every named phase of one application scenario."""
    spec = machine if isinstance(machine, MachineSpec) else get_machine(machine)
    workload = _app_module(app)
    model = make_model(spec)
    compute = {
        name: model.time(work)
        for name, work in workload.kernel_works(spec, scenario).items()
    }
    comm = dict(workload.comm_times(spec, scenario))
    return PhaseBreakdown(
        app=app, machine=spec.name, compute=compute, comm=comm
    )
