"""Parameter sensitivity of the modeled application rates.

The paper's analysis is a chain of such claims — "this is due to the
memory access speed", "due in part to superior scalar processor
performance and memory bandwidth", "would certainly increase GTC
performance" — and this module lets us make them quantitative: the
*elasticity* of an application's modeled rate with respect to any
machine parameter,

    elasticity = (d rate / rate) / (d param / param)

evaluated by central differences on perturbed :class:`MachineSpec`
records.  An elasticity near 1 means the resource binds the code; near
0 means it is slack.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from ..machines.spec import MachineSpec

#: Parameter paths supported by :func:`perturb`: either a MachineSpec
#: field or a dotted path into a nested spec ("vector.gather_bw_fraction").
SUPPORTED_PARAMS = (
    "peak_gflops",
    "stream_bw_gbs",
    "mpi_latency_us",
    "mpi_bw_gbs",
    "blas3_efficiency",
    "vector.gather_bw_fraction",
    "vector.scalar_ratio",
    "vector.register_length",
    "scalar.gather_bw_fraction",
    "scalar.issue_efficiency",
)


def perturb(spec: MachineSpec, param: str, factor: float) -> MachineSpec:
    """A copy of ``spec`` with one parameter scaled by ``factor``."""
    if factor <= 0:
        raise ValueError("perturbation factor must be positive")
    if "." in param:
        group_name, field = param.split(".", 1)
        group = getattr(spec, group_name)
        if group is None:
            raise ValueError(f"{spec.name} has no {group_name!r} block")
        value = getattr(group, field)
        new_group = replace(group, **{field: type(value)(value * factor)})
        return replace(spec, **{group_name: new_group})
    value = getattr(spec, param)
    return replace(spec, **{param: value * factor})


def elasticity(
    rate_of: Callable[[MachineSpec], float],
    spec: MachineSpec,
    param: str,
    delta: float = 0.05,
) -> float:
    """Log-log derivative of ``rate_of`` w.r.t. one machine parameter.

    ``rate_of`` maps a (possibly perturbed) spec to a modeled rate;
    central differences at ``1 +- delta``.
    """
    if not 0 < delta < 0.5:
        raise ValueError("delta must be in (0, 0.5)")
    up = rate_of(perturb(spec, param, 1.0 + delta))
    down = rate_of(perturb(spec, param, 1.0 - delta))
    base = rate_of(spec)
    if base <= 0:
        raise ValueError("base rate must be positive")
    return (up - down) / (2.0 * delta * base)


def app_rate_function(app: str, scenario) -> Callable[[MachineSpec], float]:
    """Rate(spec) for one application scenario (Gflop/P, uncalibrated).

    Calibration residuals are intentionally excluded: sensitivities
    describe the first-principles model.
    """
    if app == "lbmhd":
        from ..apps.lbmhd.workload import step_time as st
        from ..apps.lbmhd.collision import collision_work

        def rate(spec: MachineSpec) -> float:
            t_comp, t_comm = st(spec, scenario)
            flops = collision_work(
                int(round(scenario.grid**3 / scenario.nprocs))
            ).flops
            return flops / (t_comp + t_comm) / 1e9

        return rate
    if app == "gtc":
        from ..apps.gtc.workload import rank_work, step_time as st

        def rate(spec: MachineSpec) -> float:
            t_comp, t_comm = st(spec, scenario)
            return rank_work(spec).flops / (t_comp + t_comm) / 1e9

        return rate
    if app == "paratec":
        from ..apps.paratec.workload import (
            FLOPS_PER_CG_STEP,
            step_time as st,
        )

        def rate(spec: MachineSpec) -> float:
            t_comp, t_comm = st(spec, scenario)
            return (
                FLOPS_PER_CG_STEP / scenario.nprocs / (t_comp + t_comm) / 1e9
            )

        return rate
    if app == "fvcam":
        from ..apps.fvcam.workload import rank_step_work, step_time as st

        def rate(spec: MachineSpec) -> float:
            t_comp, t_comm = st(spec, scenario)
            return (
                rank_step_work(spec, scenario).flops
                / (t_comp + t_comm)
                / 1e9
            )

        return rate
    raise KeyError(f"unknown app {app!r}")


def sensitivity_profile(
    app: str, scenario, spec: MachineSpec, params: tuple[str, ...] | None = None
) -> dict[str, float]:
    """Elasticities of one app/machine/scenario over a parameter set.

    Parameters inapplicable to the machine family are skipped.
    """
    rate = app_rate_function(app, scenario)
    out: dict[str, float] = {}
    for param in params or SUPPORTED_PARAMS:
        group = param.split(".", 1)[0] if "." in param else None
        if group and getattr(spec, group) is None:
            continue
        out[param] = elasticity(rate, spec, param)
    return out
