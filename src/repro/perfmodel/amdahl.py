"""Amdahl's-law composition for partially vectorized codes.

"As described by Amdahl's Law, the time taken by the portions of the
code that are non-vectorizable can dominate the execution time,
significantly reducing the achieved computational rate."  These helpers
make that arithmetic explicit and are used by tests, docs, and the
experiment narratives; the processor models implement the same
composition internally.
"""

from __future__ import annotations


def effective_rate(
    peak: float, vector_fraction: float, scalar_ratio: float
) -> float:
    """Sustained rate when a fraction of the work runs on a slow unit.

    Parameters
    ----------
    peak:
        Rate of the fast (vector) unit.
    vector_fraction:
        Fraction of the *work* executing on the fast unit.
    scalar_ratio:
        Slow-unit rate as a fraction of ``peak`` (1/8 on the ES/SX-8).

    Returns the harmonic composition ``1 / (f/peak + (1-f)/(r*peak))``.
    """
    if not 0.0 <= vector_fraction <= 1.0:
        raise ValueError("vector_fraction outside [0, 1]")
    if peak <= 0 or scalar_ratio <= 0:
        raise ValueError("rates must be positive")
    denom = vector_fraction / peak + (1.0 - vector_fraction) / (
        peak * scalar_ratio
    )
    return 1.0 / denom


def speedup_limit(vector_fraction: float) -> float:
    """Asymptotic speedup from vectorizing a fraction of the work."""
    if not 0.0 <= vector_fraction <= 1.0:
        raise ValueError("vector_fraction outside [0, 1]")
    if vector_fraction == 1.0:
        return float("inf")
    return 1.0 / (1.0 - vector_fraction)


def required_vector_fraction(
    target_fraction_of_peak: float, scalar_ratio: float
) -> float:
    """Vector-operation ratio needed to sustain a target % of peak.

    Inverts :func:`effective_rate`; e.g. sustaining 60% of peak with a
    1/8-speed scalar unit demands ~92% vectorization — why the paper's
    vectorization work (GTC work-vector deposition, FVCAM loop
    restructuring) was decisive.
    """
    if not 0.0 < target_fraction_of_peak <= 1.0:
        raise ValueError("target must be in (0, 1]")
    if not 0.0 < scalar_ratio <= 1.0:
        raise ValueError("scalar_ratio must be in (0, 1]")
    if target_fraction_of_peak <= scalar_ratio:
        return 0.0
    # 1/t = f + (1-f)/r  (rates normalized to peak)  =>  solve for f.
    r = scalar_ratio
    t = target_fraction_of_peak
    f = (1.0 / t - 1.0 / r) / (1.0 - 1.0 / r)
    return min(1.0, max(0.0, f))
