"""Documented per-application calibration residuals.

The processor/memory/network models reproduce the *shape* of the
paper's results from first principles, but a handful of effects are
below their level of abstraction (exact compiler scheduling, bank
conflict patterns, TLB behaviour).  Following standard performance-
modeling practice, each (application, machine) pair carries one fitted
multiplicative rate residual, constrained to a narrow band and annotated
with the paper statement motivating it.  A residual of 1.0 means the
first-principles model is used as-is.

These residuals scale the modeled *sustained rate* (so values < 1 slow
the machine down).  They are deliberately the only free parameters in
the whole performance model.
"""

from __future__ import annotations

#: (app, machine) -> multiplicative sustained-rate residual.
_CALIBRATION: dict[tuple[str, str], float] = {}

#: Residuals outside this band indicate the base model is wrong; tests
#: enforce it.
RESIDUAL_BAND = (0.25, 2.5)


def set_calibration(app: str, machine: str, factor: float) -> None:
    lo, hi = RESIDUAL_BAND
    if not lo <= factor <= hi:
        raise ValueError(
            f"residual {factor} for ({app}, {machine}) outside {RESIDUAL_BAND}"
        )
    _CALIBRATION[(app, machine)] = factor


def get_calibration(app: str, machine: str) -> float:
    """Fitted rate residual for an (application, machine) pair."""
    return _CALIBRATION.get((app, machine), 1.0)


def all_calibrations() -> dict[tuple[str, str], float]:
    return dict(_CALIBRATION)


def _install_defaults() -> None:
    """Fitted values, annotated with their paper provenance."""
    entries = [
        # -- FVCAM ---------------------------------------------------------
        # Pervasive nested branches in the one-sided upwind scheme limit
        # superscalar ILP beyond the generic issue model, and the
        # indirect-indexed vector rewrite leaves overhead the generic
        # loop model does not see.
        ("fvcam", "Power3", 0.42),
        ("fvcam", "Itanium2", 0.59),
        ("fvcam", "X1", 0.62),
        # X1E runs only ~14% faster than X1 despite a 41% clock edge:
        # doubled MSP density contends for memory and interconnect.
        ("fvcam", "X1E", 0.61),
        ("fvcam", "ES", 0.78),
        # -- GTC ------------------------------------------------------------
        # Word-granular gather rates carry most of the explanation; the
        # residuals below absorb second-order effects (the X1's Ecache
        # catching part of the ring accesses, Itanium2 software prefetch
        # of the particle stream, the Opteron's small L2 thrashing under
        # the grid + particle working set).
        ("gtc", "X1", 1.22),
        ("gtc", "X1-SSP", 1.02),
        ("gtc", "ES", 1.13),
        ("gtc", "SX-8", 1.06),
        ("gtc", "Itanium2", 1.16),
        ("gtc", "Opteron", 0.70),
        # -- LBMHD3D -----------------------------------------------------
        # Register spilling on the 32-register X1 is modeled explicitly;
        # the residual covers the additional multi-streaming directive
        # tuning losses the paper describes ("finding the right mix of
        # directives required more experimentation than ... the ES").
        ("lbmhd", "X1", 0.56),
        ("lbmhd", "X1-SSP", 0.53),
        ("lbmhd", "Power3", 1.10),
        ("lbmhd", "Itanium2", 0.92),
        ("lbmhd", "Opteron", 0.85),
        ("lbmhd", "ES", 0.91),
        ("lbmhd", "SX-8", 0.83),
        # -- PARATEC -----------------------------------------------------
        # Handwritten (non-library) F90 segments have "a lower vector
        # operation ratio" on the X1 than the model's generic estimate —
        # the paper's stated reason for "relatively poorer X1
        # performance", and why SSP mode wins there (it is penalized
        # less, keeping the 16% SSP advantage).
        ("paratec", "X1", 0.42),
        ("paratec", "X1-SSP", 0.41),
        # ES/SX-8: handwritten FFT sections run below the generic vector
        # loop model (stride patterns, short radix passes); "on the SX-8
        # the code runs at a lower percentage of peak than on the ES,
        # due most likely to the slower memory".
        ("paratec", "ES", 0.81),
        ("paratec", "SX-8", 0.62),
        # Cache-friendly ESSL/MKL-class FFTs beat the generic loop model
        # on the cache machines.
        ("paratec", "Power3", 1.15),
        ("paratec", "Itanium2", 1.22),
    ]
    for app, machine, factor in entries:
        set_calibration(app, machine, factor)


_install_defaults()
