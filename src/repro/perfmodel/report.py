"""Result records and paper-style table formatting.

Every experiment produces :class:`PerfResult` rows — one per (machine,
concurrency, configuration) cell of the paper's tables — and the
formatters here render them in the Gflop/P + %peak layout the paper
uses, so the benchmark harness output can be compared against the
original tables line by line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machines.catalog import get_machine


@dataclass(frozen=True)
class PerfResult:
    """One table cell: an application run on one machine at one scale."""

    app: str
    machine: str
    nprocs: int
    gflops_per_proc: float
    config: str = ""
    wall_seconds: float = 0.0
    total_flops: float = 0.0

    @property
    def pct_peak(self) -> float:
        return get_machine(self.machine).pct_of_peak(self.gflops_per_proc)

    @property
    def aggregate_gflops(self) -> float:
        return self.gflops_per_proc * self.nprocs

    @property
    def aggregate_tflops(self) -> float:
        return self.aggregate_gflops / 1000.0

    def cell(self) -> str:
        """'G.GG  PP.P' pair as printed in the paper's tables."""
        return f"{self.gflops_per_proc:5.2f} {self.pct_peak:5.1f}"


@dataclass
class ResultTable:
    """A collection of results rendered as a paper-style table.

    Rows are labeled by (config, nprocs); columns by machine, each
    machine contributing a ``Gflop/P`` and a ``%Pk`` subcolumn.
    """

    title: str
    machines: list[str]
    results: list[PerfResult] = field(default_factory=list)

    def add(self, result: PerfResult) -> None:
        self.results.append(result)

    def row_keys(self) -> list[tuple[str, int]]:
        seen: list[tuple[str, int]] = []
        for r in self.results:
            key = (r.config, r.nprocs)
            if key not in seen:
                seen.append(key)
        return seen

    def lookup(self, config: str, nprocs: int, machine: str) -> PerfResult | None:
        for r in self.results:
            if (r.config, r.nprocs, r.machine) == (config, nprocs, machine):
                return r
        return None

    def render(self) -> str:
        col_w = 14
        lines = [self.title]
        header = f"{'Config':<12}{'P':>6} |"
        for m in self.machines:
            header += f" {m:^{col_w}} |"
        lines.append(header)
        sub = f"{'':<12}{'':>6} |"
        for _ in self.machines:
            sub += f" {'Gflop/P  %Pk':^{col_w}} |"
        lines.append(sub)
        lines.append("-" * len(header))
        for config, nprocs in self.row_keys():
            row = f"{config:<12}{nprocs:>6} |"
            for m in self.machines:
                r = self.lookup(config, nprocs, m)
                cell = r.cell() if r is not None else f"{'--':^11}"
                row += f" {cell:^{col_w}} |"
            lines.append(row)
        return "\n".join(lines)

    def best_machine(self, config: str, nprocs: int) -> str | None:
        """Machine with the highest Gflop/P for a row (absolute winner)."""
        best: PerfResult | None = None
        for m in self.machines:
            r = self.lookup(config, nprocs, m)
            if r is not None and (best is None or r.gflops_per_proc > best.gflops_per_proc):
                best = r
        return best.machine if best else None


def relative_to(results: list[PerfResult], reference_machine: str) -> dict[str, float]:
    """Runtime speed of each machine relative to a reference (Figure 8).

    Because every machine executes the same flop count, the ratio of
    Gflop/P values *is* the inverse ratio of runtimes; the paper's
    "absolute speed relative to ES" panel is exactly this quantity.
    """
    ref = next((r for r in results if r.machine == reference_machine), None)
    if ref is None:
        raise KeyError(f"no result for reference machine {reference_machine!r}")
    return {
        r.machine: r.gflops_per_proc / ref.gflops_per_proc for r in results
    }
