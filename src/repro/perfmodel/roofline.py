"""Roofline-style analysis helpers over the processor models.

The paper's recurring explanation for who-wins-where is architectural
balance: STREAM bytes per peak flop (Table 1's "Peak Stream" column)
against each code's computational intensity.  These helpers expose that
analysis directly: attainable rate vs intensity, the ridge point where a
machine turns from memory-bound to compute-bound, and a classification
of a given kernel on a given machine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..machines.memory import MemoryModel
from ..machines.processor import make_model
from ..machines.spec import MachineSpec, ProcessorKind
from ..machines.vector import vector_efficiency
from ..workload import Work


class Bound(enum.Enum):
    COMPUTE = "compute-bound"
    MEMORY = "memory-bound"
    SCALAR = "scalar-bound"


@dataclass(frozen=True)
class Roofline:
    """Attainable-performance envelope of one platform."""

    spec: MachineSpec

    @property
    def peak(self) -> float:
        """Compute roof, Gflop/s."""
        return self.spec.peak_gflops

    @property
    def stream_roof_slope(self) -> float:
        """Memory roof slope: Gflop/s per (flop/byte) of intensity."""
        return self.spec.stream_bw_gbs

    @property
    def ridge_intensity(self) -> float:
        """Intensity (flops/byte) at which the two roofs intersect."""
        return self.peak / self.stream_roof_slope

    def attainable(self, intensity: float) -> float:
        """Classic roofline: min(peak, BW x intensity), Gflop/s."""
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        return min(self.peak, self.stream_roof_slope * intensity)

    def classify(self, work: Work) -> Bound:
        """Which resource limits this kernel on this machine?"""
        model = make_model(self.spec)
        mem = MemoryModel(self.spec)
        t_mem = mem.traffic_time(work)
        t_total = model.time(work)
        if self.spec.kind is ProcessorKind.VECTOR:
            scal_flops = work.flops * (1 - work.blas3_fraction) * (
                1 - work.vector_fraction
            )
            t_scal = scal_flops / (
                self.peak * self.spec.vector.scalar_ratio * 1e9
            )
            if t_scal > 0.5 * t_total:
                return Bound.SCALAR
        return Bound.MEMORY if t_mem >= 0.5 * t_total else Bound.COMPUTE

    def sustained(self, work: Work) -> float:
        """Modeled sustained rate for a kernel, Gflop/s per processor."""
        return make_model(self.spec).sustained_gflops(work)


def vector_length_roof(spec: MachineSpec, avg_vl: float) -> float:
    """Compute roof reduced by finite vector length (vector machines)."""
    if spec.kind is not ProcessorKind.VECTOR:
        return spec.peak_gflops
    return spec.peak_gflops * vector_efficiency(spec.vector, avg_vl)
