"""The SPMD application protocol every harness-runnable app satisfies.

The paper studies four codes with one methodology: run the same SPMD
program on each platform, instrument its phases IPM-style, and compare
the per-phase breakdowns.  This module is the code-side statement of
that methodology — a small structural protocol that LBMHD3D, GTC,
FVCAM, and PARATEC all satisfy through thin adapters
(:mod:`repro.harness.apps`), so one driver (:func:`repro.harness.run`)
can execute any of them on any machine model and decomposition.

The protocol is *structural* (``typing.Protocol``): the adapters are
plain classes, no registration with a base class required, and
``isinstance`` checks work at runtime (``runtime_checkable``).
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

from ..simmpi.comm import Communicator


@runtime_checkable
class SPMDApplication(Protocol):
    """Structural interface of a harness-runnable application.

    Attributes
    ----------
    key:
        Short registry name (``"lbmhd"``, ``"gtc"``, ``"fvcam"``,
        ``"paratec"``).
    name:
        Human-readable application name for tables and logs.
    phases:
        Ordered IPM phase labels one step passes through; every
        compute/communication operation inside :meth:`step` is
        attributed to one of these (or ``simmpi.UNPHASED``).
    """

    key: str
    name: str
    phases: tuple[str, ...]

    def default_params(self) -> Any:
        """A laptop-scale parameter set that runs in seconds."""
        ...

    def default_nprocs(self, params: Any) -> int:
        """The natural simulated-rank count for a parameter set."""
        ...

    def setup(
        self,
        comm: Communicator,
        params: Any,
        arena: Any | None = None,
        kernels: Any | None = None,
    ) -> Any:
        """Build the solver state on a communicator; returns the state.

        ``kernels`` is a resolved
        :class:`~repro.kernels.KernelBackend` (or ``None`` for the
        ambient default) forwarded to the solver's constructor.
        """
        ...

    def step(self, state: Any) -> Any:
        """Advance one application step; returns the (mutated) state."""
        ...

    def flops_per_step(self, state: Any) -> float:
        """Useful flops of one step summed over all ranks."""
        ...

    def diagnostics(self, state: Any) -> dict[str, float]:
        """Physics health numbers (conserved quantities, energies...)."""
        ...

    def state_vector(self, state: Any) -> np.ndarray:
        """The full physics state flattened to one array.

        Used for bitwise run-to-run comparison (executor equivalence,
        fault-recovery identity): two runs agree iff their state
        vectors are ``np.array_equal``.
        """
        ...
