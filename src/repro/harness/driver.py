"""The single driver that runs any application on any machine.

``run("gtc", steps=5, machine="ES")`` builds a simulated communicator
for the named machine, attaches an IPM-style phase ledger, constructs
the solver through its adapter, advances it, and returns a
:class:`HarnessResult` bundling the state, the per-rank per-phase
compute/comm/wait/bytes/messages breakdown, and the physics
diagnostics.  Every experiment script reduces to a call (or a few)
into this function.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Any

from ..kernels import KernelBackend, resolve_backend
from ..machines.catalog import get_machine
from ..machines.spec import MachineSpec
from ..runtime.executors import Executor, SerialExecutor, get_executor
from ..resilience.checkpoint import Checkpointable, MemoryCheckpointStore
from ..resilience.inject import FaultInjector, FaultPlan
from ..resilience.policy import (
    RankFailureError,
    RecoveryStats,
    RetryPolicy,
)
from ..simmpi.comm import Communicator
from ..simmpi.phases import PhaseLedger
from .apps import get_application
from .protocol import SPMDApplication


@dataclass
class HarnessResult:
    """Everything one instrumented harness run produced."""

    app: SPMDApplication
    params: Any
    comm: Communicator
    state: Any
    steps: int
    ledger: PhaseLedger | None
    diagnostics: dict[str, float]
    #: Fault-recovery counters; ``None`` for a non-resilient run.
    recovery: RecoveryStats | None = None

    @property
    def machine_name(self) -> str:
        return self.comm.machine.name if self.comm.machine else "ideal"

    @property
    def flops_per_step(self) -> float:
        return self.app.flops_per_step(self.state)

    def breakdown(self, reduce: str = "mean"):
        """Empirical :class:`~repro.perfmodel.breakdown.PhaseBreakdown`."""
        from ..perfmodel.breakdown import PhaseBreakdown

        if self.ledger is None:
            raise RuntimeError("run was not instrumented (instrument=False)")
        return PhaseBreakdown.from_ledger(
            self.app.key,
            self.machine_name,
            self.ledger,
            steps=self.steps,
            reduce=reduce,
        )

    def render(self, title: str | None = None) -> str:
        """Per-phase ASCII table (per step, averaged over ranks)."""
        if self.ledger is None:
            raise RuntimeError("run was not instrumented (instrument=False)")
        if title is None:
            title = (
                f"{self.app.name} on {self.machine_name}, "
                f"P={self.comm.nprocs}, {self.steps} step(s)"
            )
        return self.ledger.render(title=title, steps=self.steps)


def _resolve_executor(executor: Any | None) -> Executor:
    """Resolve a run's executor, degrading gracefully when needed.

    An out-of-process executor that cannot schedule rank segments on
    this host (no fork start method, no usable POSIX shared memory, or
    ``REPRO_SHM_DISABLE``) falls back to serial with a warning — the
    harness promises a completed run, not a particular schedule, and
    results are executor-independent by construction.
    """
    resolved = get_executor(executor)
    if resolved.in_process:
        return resolved
    support = resolved.segment_support()
    if support.ok:
        return resolved
    warnings.warn(
        f"executor {resolved.name!r} cannot run rank segments here "
        f"({support.reason}); running serial instead",
        RuntimeWarning,
        stacklevel=3,
    )
    return SerialExecutor()


def run(
    app: str | SPMDApplication,
    params: Any | None = None,
    *,
    steps: int = 1,
    nprocs: int | None = None,
    machine: str | MachineSpec | None = None,
    comm: Communicator | None = None,
    trace: bool = False,
    timeline: bool = False,
    arena: Any | None = None,
    instrument: bool = True,
    loop_registers: float | None = None,
    executor: Any | None = None,
    kernel_backend: Any | None = None,
    fault_plan: FaultPlan | None = None,
    policy: RetryPolicy | None = None,
    checkpoint_every: int | None = None,
    checkpoint_store: Any | None = None,
    max_restarts: int = 8,
) -> HarnessResult:
    """Run ``steps`` steps of an application and return the result.

    Parameters
    ----------
    app:
        Registry key (``"lbmhd"``, ``"gtc"``, ``"fvcam"``,
        ``"paratec"``) or an adapter satisfying
        :class:`~repro.harness.protocol.SPMDApplication`.
    params:
        Application parameter dataclass; the adapter's
        ``default_params()`` when omitted.
    nprocs, machine, trace, timeline, loop_registers:
        Communicator construction knobs, used only when ``comm`` is not
        given.  ``machine`` accepts a catalog name or a
        :class:`~repro.machines.spec.MachineSpec`; ``None`` gives the
        ideal (zero-cost) communicator.
    comm:
        An existing communicator to run on instead (its machine/trace
        settings are respected; the other knobs must be left default).
    arena:
        Optional :class:`~repro.runtime.arena.Arena` enabling the
        solvers' zero-copy fast paths.
    instrument:
        Attach a fresh :class:`~repro.simmpi.PhaseLedger` for the run
        (the default).  ``False`` runs without phase accounting — the
        overhead is tiny, but bit-for-bit benchmarking wants it off.
    executor:
        How per-rank compute segments are scheduled: an
        :class:`~repro.runtime.executors.Executor`, a spec string
        (``"serial"``, ``"threads[:N]"``, ``"processes[:N]"``), or
        ``None`` to resolve the process default / ``REPRO_EXECUTOR``.
        Changes wall-clock only — states, traces, and ledgers are
        identical across executors.  A process executor needs fork +
        POSIX shared memory; when the host can't provide them the
        harness warns and runs serial.  With a process executor and an
        ``arena``, the harness provisions a shared-memory arena pool
        for the run (so the solvers' in-place fast paths stay legal in
        forked workers) and unlinks its segments deterministically at
        the end.  Only meaningful when the harness builds the
        communicator; combining it with an explicit ``comm`` is an
        error (the communicator already carries its executor).
    kernel_backend:
        Which kernel implementations the solver's hot loops use: a
        :class:`~repro.kernels.KernelBackend`, a registered name
        (``"numpy"``, ``"numba"``), or ``None`` to resolve the process
        default / ``REPRO_KERNEL_BACKEND``.  Changes nothing but
        wall-clock — every backend is pinned bitwise to the numpy
        reference, so states, traces, and ledgers are identical.  A
        backend that is unavailable on this host (numba not importable,
        ``REPRO_NUMBA_DISABLE``) degrades to the numpy reference with a
        warning; an unknown name raises listing the valid choices.
    fault_plan, policy:
        A :class:`~repro.resilience.FaultPlan` to inject at the
        transport seam, and the :class:`~repro.resilience.RetryPolicy`
        governing detection/retry/restart costs.  Passing either turns
        on the resilient run loop; recovery time lands in the ledger's
        ``recovery`` column and the counters in ``result.recovery``.
    checkpoint_every, checkpoint_store:
        Snapshot the solver every N completed steps into the store
        (an in-memory store by default).  A rank failure from the
        plan restores the latest snapshot and replays; without a
        snapshot (solver not Checkpointable) the failure propagates.
    max_restarts:
        Abort (re-raise :class:`RankFailureError`) after this many
        restore-and-replay cycles, so a plan that kills ranks faster
        than checkpoints advance cannot loop forever.
    """
    adapter = get_application(app) if isinstance(app, str) else app
    if params is None:
        params = adapter.default_params()
    if steps < 0:
        raise ValueError("steps must be >= 0")
    kernels: KernelBackend = resolve_backend(kernel_backend)

    if comm is None:
        if nprocs is None:
            nprocs = adapter.default_nprocs(params)
        spec = get_machine(machine) if isinstance(machine, str) else machine
        comm = Communicator(
            nprocs,
            machine=spec,
            trace=trace,
            timeline=timeline,
            loop_registers=loop_registers,
            executor=_resolve_executor(executor),
        )
    elif nprocs is not None and nprocs != comm.nprocs:
        raise ValueError(
            f"nprocs={nprocs} conflicts with the given communicator "
            f"(nprocs={comm.nprocs})"
        )
    elif executor is not None:
        raise ValueError(
            "executor= conflicts with an explicit comm=; construct the "
            "communicator with the executor instead"
        )

    resilient = fault_plan is not None or checkpoint_every is not None
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    injector: FaultInjector | None = None
    if resilient:
        injector = comm.enable_resilience(
            fault_plan if fault_plan is not None else FaultPlan(),
            policy=policy,
        )

    ledger = comm.attach_phase_ledger() if instrument else None

    # A process executor runs segments in forked workers, which can
    # only mutate arena buffers the parent also sees — so a private
    # arena is upgraded to a shared-memory one for the duration of the
    # run.  The pool is closed (segments unlinked) deterministically
    # on the way out; live views in the returned state keep their
    # mappings until they are garbage collected.
    owned_pool = None
    if (
        arena is not None
        and not comm.executor.in_process
        and not getattr(arena, "shared", False)
    ):
        from ..runtime.shm import SharedArenaPool, shm_available

        if shm_available():
            owned_pool = SharedArenaPool(name=f"repro-{adapter.key}")
            arena = owned_pool.arena(getattr(arena, "name", "arena"))

    try:
        state = adapter.setup(comm, params, arena=arena, kernels=kernels)

        recovery: RecoveryStats | None = None
        if not resilient:
            for _ in range(steps):
                state = adapter.step(state)
        else:
            recovery = comm.recovery_stats
            store = (
                checkpoint_store
                if checkpoint_store is not None
                else MemoryCheckpointStore()
            )
            tag = adapter.key
            last_ckpt = None
            plan_kills_ranks = (
                fault_plan is not None and bool(fault_plan.rank_failures)
            )
            if isinstance(state, Checkpointable) and plan_kills_ranks:
                # the step-0 anchor (the job's initial condition) is only
                # needed when a failure can strike before the first
                # periodic snapshot; it exists before the run starts and
                # is not charged.  checkpoint_state hands over fresh
                # copies, so the store takes ownership (copy=False).
                last_ckpt = store.save(
                    tag, 0, state.checkpoint_state(), copy=False
                )
            completed = 0
            restarts = 0
            while completed < steps:
                injector.begin_step(completed)
                try:
                    state = adapter.step(state)
                    injector.end_step()
                except RankFailureError:
                    recovery.rank_failures += 1
                    if last_ckpt is None or restarts >= max_restarts:
                        raise
                    restarts += 1
                    ckpt = store.load(tag)
                    if ckpt is None:
                        # The anchor was saved, so a vanished checkpoint is
                        # store corruption (deleted npz, evicted entry...) —
                        # name it instead of surfacing whatever attribute
                        # error the restore path would hit downstream.
                        raise RuntimeError(
                            f"restart of {tag!r} at step {completed} needs "
                            f"the checkpoint saved at step {last_ckpt.step}, "
                            f"but {type(store).__name__}.load({tag!r}) "
                            "returned None — the checkpoint store lost it"
                        ) from None
                    comm.recover_restart(ckpt.nbytes)
                    state.restore_state(ckpt.payload)
                    recovery.replayed_steps += completed - ckpt.step
                    completed = ckpt.step
                    continue
                completed += 1
                if (
                    checkpoint_every is not None
                    and completed % checkpoint_every == 0
                    and completed < steps
                    and isinstance(state, Checkpointable)
                ):
                    t0 = time.perf_counter()
                    last_ckpt = store.save(
                        tag, completed, state.checkpoint_state(), copy=False
                    )
                    recovery.checkpoint_host_seconds += (
                        time.perf_counter() - t0
                    )
                    comm.charge_checkpoint(last_ckpt.nbytes)

        diagnostics = adapter.diagnostics(state)
    finally:
        if owned_pool is not None:
            owned_pool.close()
    return HarnessResult(
        app=adapter,
        params=params,
        comm=comm,
        state=state,
        steps=steps,
        ledger=ledger,
        diagnostics=diagnostics,
        recovery=recovery,
    )
