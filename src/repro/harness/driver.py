"""The single driver that runs any application on any machine.

``run("gtc", steps=5, machine="ES")`` builds a simulated communicator
for the named machine, attaches an IPM-style phase ledger, constructs
the solver through its adapter, advances it, and returns a
:class:`HarnessResult` bundling the state, the per-rank per-phase
compute/comm/wait/bytes/messages breakdown, and the physics
diagnostics.  Every experiment script reduces to a call (or a few)
into this function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..machines.catalog import get_machine
from ..machines.spec import MachineSpec
from ..simmpi.comm import Communicator
from ..simmpi.phases import PhaseLedger
from .apps import get_application
from .protocol import SPMDApplication


@dataclass
class HarnessResult:
    """Everything one instrumented harness run produced."""

    app: SPMDApplication
    params: Any
    comm: Communicator
    state: Any
    steps: int
    ledger: PhaseLedger | None
    diagnostics: dict[str, float]

    @property
    def machine_name(self) -> str:
        return self.comm.machine.name if self.comm.machine else "ideal"

    @property
    def flops_per_step(self) -> float:
        return self.app.flops_per_step(self.state)

    def breakdown(self, reduce: str = "mean"):
        """Empirical :class:`~repro.perfmodel.breakdown.PhaseBreakdown`."""
        from ..perfmodel.breakdown import PhaseBreakdown

        if self.ledger is None:
            raise RuntimeError("run was not instrumented (instrument=False)")
        return PhaseBreakdown.from_ledger(
            self.app.key,
            self.machine_name,
            self.ledger,
            steps=self.steps,
            reduce=reduce,
        )

    def render(self, title: str | None = None) -> str:
        """Per-phase ASCII table (per step, averaged over ranks)."""
        if self.ledger is None:
            raise RuntimeError("run was not instrumented (instrument=False)")
        if title is None:
            title = (
                f"{self.app.name} on {self.machine_name}, "
                f"P={self.comm.nprocs}, {self.steps} step(s)"
            )
        return self.ledger.render(title=title, steps=self.steps)


def run(
    app: str | SPMDApplication,
    params: Any | None = None,
    *,
    steps: int = 1,
    nprocs: int | None = None,
    machine: str | MachineSpec | None = None,
    comm: Communicator | None = None,
    trace: bool = False,
    timeline: bool = False,
    arena: Any | None = None,
    instrument: bool = True,
    loop_registers: float | None = None,
    executor: Any | None = None,
) -> HarnessResult:
    """Run ``steps`` steps of an application and return the result.

    Parameters
    ----------
    app:
        Registry key (``"lbmhd"``, ``"gtc"``, ``"fvcam"``,
        ``"paratec"``) or an adapter satisfying
        :class:`~repro.harness.protocol.SPMDApplication`.
    params:
        Application parameter dataclass; the adapter's
        ``default_params()`` when omitted.
    nprocs, machine, trace, timeline, loop_registers:
        Communicator construction knobs, used only when ``comm`` is not
        given.  ``machine`` accepts a catalog name or a
        :class:`~repro.machines.spec.MachineSpec`; ``None`` gives the
        ideal (zero-cost) communicator.
    comm:
        An existing communicator to run on instead (its machine/trace
        settings are respected; the other knobs must be left default).
    arena:
        Optional :class:`~repro.runtime.arena.Arena` enabling the
        solvers' zero-copy fast paths.
    instrument:
        Attach a fresh :class:`~repro.simmpi.PhaseLedger` for the run
        (the default).  ``False`` runs without phase accounting — the
        overhead is tiny, but bit-for-bit benchmarking wants it off.
    executor:
        How per-rank compute segments are scheduled: an
        :class:`~repro.runtime.executors.Executor`, a spec string
        (``"serial"``, ``"threads"``, ``"threads:N"``), or ``None`` to
        resolve the process default / ``REPRO_EXECUTOR``.  Changes
        wall-clock only — states, traces, and ledgers are identical
        across executors.  Only meaningful when the harness builds the
        communicator; combining it with an explicit ``comm`` is an
        error (the communicator already carries its executor).
    """
    adapter = get_application(app) if isinstance(app, str) else app
    if params is None:
        params = adapter.default_params()
    if steps < 0:
        raise ValueError("steps must be >= 0")

    if comm is None:
        if nprocs is None:
            nprocs = adapter.default_nprocs(params)
        spec = get_machine(machine) if isinstance(machine, str) else machine
        comm = Communicator(
            nprocs,
            machine=spec,
            trace=trace,
            timeline=timeline,
            loop_registers=loop_registers,
            executor=executor,
        )
    elif nprocs is not None and nprocs != comm.nprocs:
        raise ValueError(
            f"nprocs={nprocs} conflicts with the given communicator "
            f"(nprocs={comm.nprocs})"
        )
    elif executor is not None:
        raise ValueError(
            "executor= conflicts with an explicit comm=; construct the "
            "communicator with the executor instead"
        )

    ledger = comm.attach_phase_ledger() if instrument else None
    state = adapter.setup(comm, params, arena=arena)
    for _ in range(steps):
        state = adapter.step(state)
    diagnostics = adapter.diagnostics(state)
    return HarnessResult(
        app=adapter,
        params=params,
        comm=comm,
        state=state,
        steps=steps,
        ledger=ledger,
        diagnostics=diagnostics,
    )
