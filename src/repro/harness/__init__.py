"""Unified SPMD application harness with IPM-style phase instrumentation.

One protocol (:class:`SPMDApplication`), four adapters (LBMHD3D, GTC,
FVCAM, PARATEC), one driver (:func:`run`)::

    from repro import harness

    result = harness.run("gtc", steps=5, machine="ES")
    print(result.render())          # per-phase compute/comm/sync table
    bd = result.breakdown()         # perfmodel.PhaseBreakdown
"""

from .apps import APPLICATIONS, get_application, register
from .driver import HarnessResult, run
from .protocol import SPMDApplication

__all__ = [
    "APPLICATIONS",
    "HarnessResult",
    "SPMDApplication",
    "get_application",
    "register",
    "run",
]
