"""Adapters binding the four paper applications to the SPMD protocol.

Each adapter is a thin stateless shim: ``setup`` builds the existing
solver class unchanged (the solvers' public APIs are untouched, so
direct construction keeps working everywhere), ``step`` advances it by
its natural unit (a time step; one SCF iteration for PARATEC), and
``diagnostics`` surfaces the solver's conserved/monitored quantities.

The module-level :data:`APPLICATIONS` registry maps registry keys to
adapter singletons; :func:`get_application` resolves a key with a
helpful error, and :func:`register` lets external code add apps.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..apps.fvcam.solver import FVCAM, FVCAMParams
from ..apps.gtc.particles import PARTICLE_FIELDS
from ..apps.gtc.solver import GTC, GTCParams
from ..apps.lbmhd.solver import LBMHD3D, LBMHDParams
from ..apps.paratec.solver import Paratec, ParatecParams
from ..simmpi.comm import Communicator
from .protocol import SPMDApplication


class LBMHDApp:
    """Lattice Boltzmann magnetohydrodynamics (LBMHD3D)."""

    key = "lbmhd"
    name = "LBMHD3D"
    phases = LBMHD3D.phases
    params_cls = LBMHDParams

    def default_params(self) -> LBMHDParams:
        return LBMHDParams(shape=(16, 16, 16))

    def default_nprocs(self, params: LBMHDParams) -> int:
        return 8

    def setup(
        self,
        comm: Communicator,
        params: LBMHDParams,
        arena: Any | None = None,
        kernels: Any | None = None,
    ) -> LBMHD3D:
        return LBMHD3D(params, comm, arena=arena, kernels=kernels)

    def step(self, state: LBMHD3D) -> LBMHD3D:
        state.step()
        return state

    def flops_per_step(self, state: LBMHD3D) -> float:
        return state.flops_per_step

    def diagnostics(self, state: LBMHD3D) -> dict[str, float]:
        d = state.diagnostics()
        return {
            "mass": d.mass,
            "kinetic_energy": d.kinetic_energy,
            "magnetic_energy": d.magnetic_energy,
        }

    def state_vector(self, state: LBMHD3D) -> np.ndarray:
        return state.global_state().ravel()


class GTCApp:
    """Gyrokinetic toroidal particle-in-cell code (GTC)."""

    key = "gtc"
    name = "GTC"
    phases = GTC.phases
    params_cls = GTCParams

    def default_params(self) -> GTCParams:
        return GTCParams()

    def default_nprocs(self, params: GTCParams) -> int:
        return params.ntoroidal

    def setup(
        self,
        comm: Communicator,
        params: GTCParams,
        arena: Any | None = None,
        kernels: Any | None = None,
    ) -> GTC:
        return GTC(params, comm, arena=arena, kernels=kernels)

    def step(self, state: GTC) -> GTC:
        state.step()
        return state

    def flops_per_step(self, state: GTC) -> float:
        return state.flops_per_step

    def diagnostics(self, state: GTC) -> dict[str, float]:
        return {
            "particles": float(state.total_particles()),
            "total_charge": state.total_charge(),
        }

    def state_vector(self, state: GTC) -> np.ndarray:
        parts = [c.ravel() for c in state.charge]
        parts += [f.ravel() for f in state.phi]
        for p in state.particles:
            parts += [getattr(p, name).ravel() for name in PARTICLE_FIELDS]
        return np.concatenate(parts)


class FVCAMApp:
    """Finite-volume atmospheric dynamical core (FVCAM)."""

    key = "fvcam"
    name = "FVCAM"
    phases = FVCAM.phases
    params_cls = FVCAMParams

    def default_params(self) -> FVCAMParams:
        return FVCAMParams()

    def default_nprocs(self, params: FVCAMParams) -> int:
        return params.py * params.pz

    def setup(
        self,
        comm: Communicator,
        params: FVCAMParams,
        arena: Any | None = None,
        kernels: Any | None = None,
    ) -> FVCAM:
        # FVCAM manages its own scratch internally; arena is accepted
        # for interface uniformity and ignored.
        return FVCAM(params, comm, kernels=kernels)

    def step(self, state: FVCAM) -> FVCAM:
        state.step()
        return state

    def flops_per_step(self, state: FVCAM) -> float:
        return state.flops_per_step

    def diagnostics(self, state: FVCAM) -> dict[str, float]:
        out = {"total_mass": state.total_mass()}
        if state.params.with_tracer:
            out["tracer_mass"] = state.tracer_mass()
        return out

    def state_vector(self, state: FVCAM) -> np.ndarray:
        parts = [f.ravel() for f in state.global_fields()]
        if state.q is not None:
            parts += [a.ravel() for a in state.q]
        return np.concatenate(parts)


class ParatecApp:
    """Plane-wave DFT total-energy code (PARATEC).

    One harness step is one SCF iteration (``Paratec.scf_step``); the
    classic all-at-once ``Paratec.run`` is untouched for direct users.
    """

    key = "paratec"
    name = "PARATEC"
    phases = Paratec.phases
    params_cls = ParatecParams

    def default_params(self) -> ParatecParams:
        return ParatecParams()

    def default_nprocs(self, params: ParatecParams) -> int:
        return 2

    def setup(
        self,
        comm: Communicator,
        params: ParatecParams,
        arena: Any | None = None,
        kernels: Any | None = None,
    ) -> Paratec:
        solver = Paratec(params, comm, kernels=kernels)
        if arena is not None:
            solver.fft.arena = arena
        return solver

    def step(self, state: Paratec) -> Paratec:
        state.scf_step()
        return state

    def flops_per_step(self, state: Paratec) -> float:
        return state.flops_per_step

    def diagnostics(self, state: Paratec) -> dict[str, float]:
        if state.result is None:
            return {}
        return {
            "band_energy": state.result.band_energy,
            "potential_change": state.result.potential_change,
        }

    def state_vector(self, state: Paratec) -> np.ndarray:
        parts = [a.ravel() for band in state.bands for a in band]
        parts += [s.ravel() for s in state.ham.potential_slabs]
        if state.result is not None:
            parts.append(state.result.eigenvalues.astype(complex).ravel())
        return np.concatenate(parts)


#: Registry of harness-runnable applications, keyed by ``app.key``.
APPLICATIONS: dict[str, SPMDApplication] = {
    app.key: app for app in (LBMHDApp(), GTCApp(), FVCAMApp(), ParatecApp())
}


def get_application(key: str) -> SPMDApplication:
    """Resolve a registry key to its adapter (KeyError lists options)."""
    try:
        return APPLICATIONS[key]
    except KeyError:
        raise KeyError(
            f"unknown application {key!r}; available: "
            f"{', '.join(sorted(APPLICATIONS))}"
        ) from None


def register(app: SPMDApplication) -> None:
    """Add (or replace) an application in the registry."""
    if not isinstance(app, SPMDApplication):
        raise TypeError(
            f"{app!r} does not satisfy the SPMDApplication protocol"
        )
    APPLICATIONS[app.key] = app
