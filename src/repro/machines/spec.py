"""Dataclasses describing the HEC platforms evaluated in the paper.

Every quantity in :class:`MachineSpec` is taken from Table 1 of the paper
or from its Section 2 prose (vector lengths, register counts, scalar-unit
ratios, cache sizes).  The specs are *descriptive*; timing behaviour is
implemented by :mod:`repro.machines.processor`, :mod:`repro.machines.memory`
and :mod:`repro.machines.vector`, which consume these records.

Units used throughout the package:

========================  =======================================
quantity                  unit
========================  =======================================
clock                     MHz
peak / rates              Gflop/s (= 1e9 flop/s)
bandwidth                 GB/s (= 1e9 byte/s)
latency                   microseconds
message sizes             bytes
time                      seconds
========================  =======================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ProcessorKind(enum.Enum):
    """Broad microarchitecture family of a processor."""

    SUPERSCALAR = "superscalar"
    VECTOR = "vector"


class NetworkTopology(enum.Enum):
    """Interconnect topology families appearing in Table 1."""

    FAT_TREE = "fat-tree"
    HYPERCUBE_4D = "4d-hypercube"
    CROSSBAR = "crossbar"
    TORUS_2D = "2d-torus"
    OMEGA = "omega"


@dataclass(frozen=True)
class CacheSpec:
    """One level of a cache hierarchy.

    Attributes
    ----------
    level:
        1, 2, 3 ... (or 0 for a vector machine's "Ecache"-style shared cache).
    size_kib:
        Capacity in KiB.
    bandwidth_gbs:
        Sustainable bandwidth to the core(s) in GB/s.
    holds_fp:
        Whether floating-point data is cached at this level.  The Itanium2
        famously does *not* keep FP data in L1 — the paper attributes part
        of its poor LBMHD/GTC showing to exactly this.
    shared:
        True when the cache is shared between the processors of a node
        (e.g. the X1 MSP Ecache shared by four SSPs).
    """

    level: int
    size_kib: float
    bandwidth_gbs: float = 0.0
    holds_fp: bool = True
    shared: bool = False


@dataclass(frozen=True)
class VectorSpec:
    """Vector-unit parameters for parallel vector processors.

    Attributes
    ----------
    register_length:
        Number of 64-bit words per vector register (256 for ES/SX-8 and
        for the X1 in MSP mode, 64 per SSP).
    num_registers:
        Architected vector registers (72 on ES/SX-8, 32 on the X1) —
        fewer registers force spilling in complex loop bodies, which the
        paper observed while vectorizing the LBMHD collision kernel on X1.
    num_pipes:
        Replicated vector pipe sets feeding the peak rate.
    startup_cycles:
        Effective dead time (pipeline fill + instruction overhead) per
        vector instruction, in clock cycles.  Determines how quickly
        efficiency degrades at short vector lengths.
    scalar_ratio:
        Peak of the attached scalar unit relative to the vector peak.
        ES and SX-8 scalar units run at one-eighth of vector peak; the X1
        SSP's 400 MHz 2-way scalar core is a much smaller fraction of the
        12.8 Gflop/s MSP.
    gather_bw_fraction:
        Sustainable gather/scatter (irregular access) bandwidth as a
        fraction of unit-stride STREAM bandwidth.  The ES's FPLRAM keeps
        this high; the SX-8's commodity DDR2-SDRAM does not — the paper
        blames exactly this for the SX-8's sub-2x GTC speedup over ES.
    multistream_width:
        Number of SSP-like lanes ganged into the programming unit
        (4 for the X1 MSP, 1 elsewhere).  In a multistreamed serial
        section only one of the lanes' scalar units does useful work.
    """

    register_length: int
    num_registers: int
    num_pipes: int
    startup_cycles: float
    scalar_ratio: float
    gather_bw_fraction: float
    multistream_width: int = 1


@dataclass(frozen=True)
class ScalarSpec:
    """Superscalar-core parameters that the paper's analysis leans on.

    Attributes
    ----------
    has_fma:
        Fused multiply-add issue (Power3, Itanium2).  The Opteron lacks it
        and instead needs paired SSE operands — the paper cites this as a
        PARATEC/BLAS3 handicap.
    simd_pairing_efficiency:
        For SSE-style SIMD, the achievable fraction of peak when operand
        pairing cannot always be satisfied (1.0 when not applicable).
    fp_in_l1:
        Whether FP loads are served by L1 (False on Itanium2).
    gather_bw_fraction:
        Irregular-access bandwidth as a fraction of STREAM bandwidth.
        The Opteron's on-chip memory controller gives it the edge here.
    issue_efficiency:
        Fraction of nominal peak reachable on well-scheduled, cache-
        resident, non-BLAS3 compute loops (covers issue-width limits,
        branches, and address generation).
    """

    has_fma: bool
    simd_pairing_efficiency: float
    fp_in_l1: bool
    gather_bw_fraction: float
    issue_efficiency: float


@dataclass(frozen=True)
class NodeSpec:
    """SMP-node level organisation."""

    cpus_per_node: int

    memory_gib: float = 16.0
    """Main memory per SMP node in GiB — the budget the work-vector
    method's 256 grid copies must fit into, which is what rules out
    hybrid MPI/OpenMP GTC on the vector machines."""

    smp_memory_contention: float = 1.0
    """Factor (<= 1) by which per-CPU STREAM bandwidth degrades when all
    CPUs in the node stream simultaneously.  Table 1 already reports the
    all-CPUs-competing EP-STREAM figure, so this defaults to 1."""

    network_ports_shared_by: int = 1
    """Nodes per network port: 2 on the X1E, whose doubled module density
    makes node pairs share ports (Table 1 footnote)."""


@dataclass(frozen=True)
class MachineSpec:
    """Complete description of one evaluated platform.

    The numeric fields mirror Table 1 column-for-column; the nested specs
    capture the Section 2 prose needed by the timing models.
    """

    name: str
    kind: ProcessorKind
    clock_mhz: float
    peak_gflops: float
    stream_bw_gbs: float
    mpi_latency_us: float
    mpi_bw_gbs: float
    topology: NetworkTopology
    node: NodeSpec
    interconnect_name: str = ""
    vector: VectorSpec | None = None
    scalar: ScalarSpec | None = None
    caches: tuple[CacheSpec, ...] = field(default_factory=tuple)
    blas3_efficiency: float = 0.80
    """Fraction of peak sustained inside vendor dense-linear-algebra /
    library-FFT kernels (ESSL on the Power3 etc.).  PARATEC spends ~60%
    of its time there, which is why it tops 60% of peak on the Power3."""

    bisection_oversubscription: float = 1.0
    """Factor by which the installed network undershoots full bisection
    at the evaluated scale (the InfiniBand fabric of the Opteron cluster
    was oversubscribed, which the paper blames for PARATEC's poor
    512-way all-to-all scaling there)."""

    max_processors: int = 1 << 16
    notes: str = ""

    def __post_init__(self) -> None:
        if self.kind is ProcessorKind.VECTOR and self.vector is None:
            raise ValueError(f"vector machine {self.name!r} needs a VectorSpec")
        if self.kind is ProcessorKind.SUPERSCALAR and self.scalar is None:
            raise ValueError(
                f"superscalar machine {self.name!r} needs a ScalarSpec"
            )
        if self.peak_gflops <= 0:
            raise ValueError("peak_gflops must be positive")
        if self.stream_bw_gbs <= 0:
            raise ValueError("stream_bw_gbs must be positive")

    @property
    def bytes_per_flop(self) -> float:
        """STREAM bytes available per peak flop (Table 1 'Peak Stream')."""
        return self.stream_bw_gbs / self.peak_gflops

    @property
    def clock_ghz(self) -> float:
        return self.clock_mhz / 1000.0

    def pct_of_peak(self, gflops_per_proc: float) -> float:
        """Express a sustained per-processor rate as percentage of peak."""
        return 100.0 * gflops_per_proc / self.peak_gflops
