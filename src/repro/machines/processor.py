"""Processor timing models: translate :class:`Work` into virtual seconds.

Two families, mirroring the paper's platform split:

* :class:`SuperscalarModel` — issue-limited compute rate overlapped with
  the memory-hierarchy time (whichever is slower dominates), with FMA /
  SIMD-pairing corrections and a separate library (BLAS3/vendor-FFT)
  regime running near peak.
* :class:`VectorModel` — Amdahl composition of a Hockney-model vector
  portion (overlapped with memory, as vector loads are pipelined behind
  arithmetic) and a scalar-unit remainder running at ``scalar_ratio`` of
  peak.  Register spills in complex loop bodies add memory traffic.

Both expose a single method, :meth:`ProcessorModel.time`, returning the
virtual seconds one processor needs for a :class:`Work` record, and
:meth:`ProcessorModel.sustained_gflops` for reporting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..workload import Work
from .memory import MemoryModel
from .spec import MachineSpec, ProcessorKind
from .vector import VectorPipelineModel, spill_traffic_multiplier


class ProcessorModel(abc.ABC):
    """Common interface for platform timing models."""

    spec: MachineSpec

    @abc.abstractmethod
    def time(self, work: Work) -> float:
        """Virtual seconds for one processor to execute ``work``."""

    def sustained_gflops(self, work: Work) -> float:
        """Sustained rate (Gflop/s) on this kernel."""
        t = self.time(work)
        if t <= 0.0:
            return self.spec.peak_gflops
        return work.flops / t / 1e9

    def pct_peak(self, work: Work) -> float:
        return 100.0 * self.sustained_gflops(work) / self.spec.peak_gflops


@dataclass(frozen=True)
class SuperscalarModel(ProcessorModel):
    """Timing for the Power3 / Itanium2 / Opteron commodity processors."""

    spec: MachineSpec

    def __post_init__(self) -> None:
        if self.spec.kind is not ProcessorKind.SUPERSCALAR:
            raise ValueError(f"{self.spec.name} is not superscalar")

    @property
    def memory(self) -> MemoryModel:
        return MemoryModel(self.spec)

    def _issue_rate(self, work: Work) -> float:
        """Achievable flop/s on well-fed, non-library loop code."""
        s = self.spec.scalar
        if s.has_fma:
            # Flops outside multiply-add pairs single-issue at half rate.
            fma_mult = work.fma_fraction + (1.0 - work.fma_fraction) * 0.5
        else:
            # Peak assumes SIMD operand pairing, which cannot always be
            # satisfied (the paper's Opteron/SSE caveat).
            fma_mult = s.simd_pairing_efficiency
        return self.spec.peak_gflops * 1e9 * s.issue_efficiency * fma_mult

    def time(self, work: Work) -> float:
        lib_flops = work.flops * work.blas3_fraction
        loop_flops = work.flops - lib_flops

        t_lib = lib_flops / (self.spec.peak_gflops * 1e9 * self.spec.blas3_efficiency)

        t_cpu = loop_flops / self._issue_rate(work) if loop_flops else 0.0
        t_mem = self.memory.traffic_time(work)
        # Out-of-order / prefetched execution overlaps compute with
        # memory; the slower of the two dominates the loop regime.
        return t_lib + max(t_cpu, t_mem)


#: Vector-register demand assumed for loop bodies, by named complexity.
LOOP_REGISTER_DEMAND = {
    "simple": 12.0,
    "moderate": 24.0,
    "complex": 48.0,
}


@dataclass(frozen=True)
class VectorModel(ProcessorModel):
    """Timing for the X1/X1E (MSP or SSP mode), ES, and SX-8.

    Parameters
    ----------
    loop_registers:
        Vector-register demand of the dominant loop body; kernels may
        override per-call via :meth:`time_with_registers`.
    """

    spec: MachineSpec
    loop_registers: float = LOOP_REGISTER_DEMAND["moderate"]

    def __post_init__(self) -> None:
        if self.spec.kind is not ProcessorKind.VECTOR:
            raise ValueError(f"{self.spec.name} is not a vector machine")

    @property
    def pipeline(self) -> VectorPipelineModel:
        return VectorPipelineModel(self.spec)

    @property
    def memory(self) -> MemoryModel:
        return MemoryModel(self.spec)

    def time(self, work: Work) -> float:
        return self.time_with_registers(work, self.loop_registers)

    def time_with_registers(self, work: Work, loop_registers: float) -> float:
        lib_flops = work.flops * work.blas3_fraction
        loop_flops = work.flops - lib_flops
        vec_flops = loop_flops * work.vector_fraction
        scal_flops = loop_flops - vec_flops

        t_lib = lib_flops / (self.spec.peak_gflops * 1e9 * self.spec.blas3_efficiency)

        # --- vectorized portion: pipelined compute overlapped with memory
        rate_vec = self.pipeline.sustained_gflops(work.avg_vector_length) * 1e9
        t_vec_cpu = vec_flops / rate_vec if vec_flops else 0.0

        spill = spill_traffic_multiplier(self.spec.vector, loop_registers)
        spilled_work = Work(
            name=work.name,
            flops=work.flops,
            bytes_unit=work.bytes_unit * spill,
            bytes_gather=work.bytes_gather,
            cache_fraction=work.cache_fraction,
            avg_vector_length=work.avg_vector_length,
        )
        t_mem = self.memory.traffic_time(spilled_work)
        t_vec = max(t_vec_cpu, t_mem)

        # --- scalar remainder: unvectorized code crawls at scalar_ratio.
        t_scal = (
            scal_flops / (self.pipeline.scalar_gflops() * 1e9)
            if scal_flops
            else 0.0
        )
        return t_lib + t_vec + t_scal


def make_model(spec: MachineSpec, loop_registers: float | None = None) -> ProcessorModel:
    """Factory: the right :class:`ProcessorModel` for a platform."""
    if spec.kind is ProcessorKind.VECTOR:
        if loop_registers is None:
            return VectorModel(spec)
        return VectorModel(spec, loop_registers=loop_registers)
    return SuperscalarModel(spec)
