"""Memory-hierarchy timing model.

Charges time for the traffic described by a :class:`repro.workload.Work`
record on a particular :class:`repro.machines.spec.MachineSpec`:

* unit-stride traffic runs at the machine's measured EP-STREAM triad
  bandwidth (Table 1), the paper's own choice of "a more accurate measure
  of (unit-stride) memory performance than theoretical peak";
* the cache-resident fraction of unit-stride traffic is served at the
  bandwidth of the innermost cache that holds floating-point data (the
  Itanium2's L1 does not, which is one of the paper's explanations for
  its GTC/LBMHD behaviour), or at the X1's shared Ecache;
* gather/scatter traffic is served at ``gather_bw_fraction`` of STREAM —
  the axis on which the ES's FPLRAM beats the SX-8's DDR2-SDRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workload import Work
from .spec import MachineSpec, ProcessorKind

#: Fallback cache speed-up over main memory when a cache level reports no
#: explicit bandwidth figure.
_DEFAULT_CACHE_SPEEDUP = 4.0


@dataclass(frozen=True)
class MemoryModel:
    """Time calculator for the memory traffic of one kernel."""

    spec: MachineSpec

    @property
    def stream_bw(self) -> float:
        """Unit-stride bandwidth in bytes/second."""
        return self.spec.stream_bw_gbs * 1e9

    @property
    def gather_bw(self) -> float:
        """Irregular (gather/scatter) bandwidth in bytes/second."""
        if self.spec.kind is ProcessorKind.VECTOR:
            frac = self.spec.vector.gather_bw_fraction
        else:
            frac = self.spec.scalar.gather_bw_fraction
        return self.stream_bw * frac

    @property
    def cache_bw(self) -> float:
        """Bandwidth (bytes/s) of the fastest FP-holding cache level.

        Falls back to ``_DEFAULT_CACHE_SPEEDUP`` x STREAM on machines
        whose cache specs carry no bandwidth figure, and to plain STREAM
        on cacheless vector machines (ES, SX-8).
        """
        best = 0.0
        for cache in self.spec.caches:
            if not cache.holds_fp:
                continue
            bw = cache.bandwidth_gbs * 1e9
            if bw <= 0.0:
                bw = self.stream_bw * _DEFAULT_CACHE_SPEEDUP
            best = max(best, bw)
        return best if best > 0.0 else self.stream_bw

    def has_cache(self) -> bool:
        return any(c.holds_fp for c in self.spec.caches)

    def traffic_time(self, work: Work) -> float:
        """Seconds spent moving this kernel's data.

        The cached fraction of unit-stride traffic is charged at cache
        bandwidth; everything else at STREAM; gathers at the irregular
        rate.  Streams are assumed not to overlap each other (they share
        the same memory ports).
        """
        unit = work.unit_bytes_on(
            superscalar=self.spec.kind is ProcessorKind.SUPERSCALAR
        )
        cached = unit * work.cache_fraction
        streamed = unit - cached
        t = streamed / self.stream_bw
        if cached > 0.0:
            t += cached / self.cache_bw if self.has_cache() else cached / self.stream_bw
        if work.bytes_gather > 0.0:
            # Gathers are cache-served only on the superscalar machines:
            # vector gather/scatter bypasses the X1's Ecache and the PIC
            # working sets (256 work-vector grid copies) exceed it anyway.
            gather_cached = (
                work.bytes_gather * work.gather_cache_fraction
                if self.spec.kind is ProcessorKind.SUPERSCALAR
                else 0.0
            )
            t += gather_cached / self.cache_bw
            t += (work.bytes_gather - gather_cached) / self.gather_bw
        return t

    def effective_bandwidth(self, work: Work) -> float:
        """Aggregate bytes/s achieved on this kernel's traffic mix."""
        total = work.total_bytes
        if total == 0.0:
            return float("inf")
        return total / self.traffic_time(work)
