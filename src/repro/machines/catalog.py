"""The seven evaluated platforms, parameterized from Table 1 of the paper.

Numeric columns (clock, peak, STREAM triad bandwidth, MPI latency and
bandwidth, topology, CPUs/node) are copied from Table 1.  The nested
microarchitectural parameters come from the Section 2 prose: vector
register counts and lengths, scalar-unit ratios, MSP/SSP organisation,
memory technology (FPLRAM vs DDR2), Ecache, and the X1E's shared network
ports.  A handful of efficiency constants (``issue_efficiency``,
``gather_bw_fraction``, ``blas3_efficiency``) are fitted so the model
lands in the paper's observed ranges; each is annotated with the paper
statement that motivates it.

Note on the Power3 peak: Table 1's printed peak column is garbled in the
source text ("0.7"), but the prose states 1.5 Gflop/s and the printed
bytes/flop ratio 0.26 = 0.4/1.5 confirms it, so 1.5 is used here.

>>> from repro.machines import get_machine
>>> get_machine("ES").peak_gflops
8.0
"""

from __future__ import annotations

from .spec import (
    CacheSpec,
    MachineSpec,
    NetworkTopology,
    NodeSpec,
    ProcessorKind,
    ScalarSpec,
    VectorSpec,
)

#: Double-precision word size used for all bandwidth/volume computations.
WORD_BYTES = 8

POWER3 = MachineSpec(
    name="Power3",
    kind=ProcessorKind.SUPERSCALAR,
    clock_mhz=375.0,
    peak_gflops=1.5,
    stream_bw_gbs=0.4,
    mpi_latency_us=16.3,
    mpi_bw_gbs=0.13,
    topology=NetworkTopology.FAT_TREE,
    interconnect_name="SP Switch2",
    node=NodeSpec(cpus_per_node=16, memory_gib=32.0),
    scalar=ScalarSpec(
        has_fma=True,
        simd_pairing_efficiency=1.0,
        fp_in_l1=True,
        # Cache-line-granular random access vs stream (PIC grids).
        gather_bw_fraction=0.35,
        # "the (relatively old) IBM Power3 ... consistently achieves a
        # higher fraction of peak than the Itanium2" -- generous issue
        # efficiency for its two FMA pipes.
        issue_efficiency=0.32,
    ),
    caches=(
        CacheSpec(level=1, size_kib=64, bandwidth_gbs=3.2),
        CacheSpec(level=2, size_kib=8192, bandwidth_gbs=1.6),
    ),
    # ESSL FFT/BLAS3: PARATEC tops 62% of peak on this machine.
    blas3_efficiency=0.90,
    max_processors=6080,
    notes="380-node IBM pSeries 'Seaborg', NERSC/LBNL.",
)

ITANIUM2 = MachineSpec(
    name="Itanium2",
    kind=ProcessorKind.SUPERSCALAR,
    clock_mhz=1400.0,
    peak_gflops=5.6,
    stream_bw_gbs=1.1,
    mpi_latency_us=3.0,
    mpi_bw_gbs=0.25,
    topology=NetworkTopology.FAT_TREE,
    interconnect_name="Quadrics Elan4",
    node=NodeSpec(cpus_per_node=4, memory_gib=8.0),
    scalar=ScalarSpec(
        has_fma=True,
        simd_pairing_efficiency=1.0,
        # "floating point values cannot be stored in the first level of
        # cache" -- register spills and irregular accesses hurt badly.
        fp_in_l1=False,
        gather_bw_fraction=0.30,
        issue_efficiency=0.22,
    ),
    caches=(
        CacheSpec(level=1, size_kib=16, holds_fp=False, bandwidth_gbs=22.4),
        CacheSpec(level=2, size_kib=256, bandwidth_gbs=11.2),
        CacheSpec(level=3, size_kib=6144, bandwidth_gbs=6.0),
    ),
    blas3_efficiency=0.88,
    max_processors=4096,
    notes="1024-node 'Thunder', LLNL.",
)

OPTERON = MachineSpec(
    name="Opteron",
    kind=ProcessorKind.SUPERSCALAR,
    clock_mhz=2200.0,
    peak_gflops=4.4,
    stream_bw_gbs=2.3,
    mpi_latency_us=6.0,
    mpi_bw_gbs=0.59,
    topology=NetworkTopology.FAT_TREE,
    interconnect_name="InfiniBand",
    node=NodeSpec(cpus_per_node=2, memory_gib=6.0),
    scalar=ScalarSpec(
        # "the Opteron's performance can be limited for dense linear
        # algebra ... due to its lack of FMA" and SSE pairing constraints.
        has_fma=False,
        simd_pairing_efficiency=0.70,
        fp_in_l1=True,
        # On-chip memory controller: low-latency irregular access
        # (paper credits this for the GTC/LBMHD wins).
        gather_bw_fraction=0.35,
        issue_efficiency=0.30,
    ),
    caches=(
        CacheSpec(level=1, size_kib=64, bandwidth_gbs=35.2),
        CacheSpec(level=2, size_kib=1024, bandwidth_gbs=8.8),
    ),
    blas3_efficiency=0.62,
    # "The Quadrics-based Itanium2 platform also shows better scaling
    # characteristics at high concurrency than the InfiniBand-based
    # Opteron system, for the global all-to-all communication patterns"
    bisection_oversubscription=4.0,
    max_processors=640,
    notes="320 dual-socket nodes, 'Jacquard', NERSC/LBNL.",
)

X1 = MachineSpec(
    name="X1",
    kind=ProcessorKind.VECTOR,
    clock_mhz=800.0,
    peak_gflops=12.8,
    stream_bw_gbs=14.9,
    mpi_latency_us=7.1,
    mpi_bw_gbs=6.3,
    topology=NetworkTopology.HYPERCUBE_4D,
    interconnect_name="Cray custom",
    node=NodeSpec(cpus_per_node=4, memory_gib=16.0),
    vector=VectorSpec(
        # MSP mode: four ganged SSPs, each with 64-word registers; the
        # natural multistreamed trip count is 4 x 64 = 256.
        register_length=256,
        num_registers=32,
        num_pipes=2,
        startup_cycles=110.0,
        # Only one of the four SSP scalar cores is useful in a
        # multistreamed serial section: 0.8 Gflop/s of 12.8 peak.
        scalar_ratio=0.0625,
        # Word-granular random read-modify-write rate vs STREAM: vector
        # gathers pay per-element bank-busy time, not per-line.
        gather_bw_fraction=0.070,
        multistream_width=4,
    ),
    caches=(
        CacheSpec(level=0, size_kib=2048, bandwidth_gbs=38.0, shared=True),
    ),
    # Smaller fraction of time in optimised libraries vectorises well:
    # "on the X1 the code spends a much smaller percentage of the total
    # time in highly optimized 3D FFTs and BLAS3 libraries".
    blas3_efficiency=0.72,
    max_processors=512,
    notes="512-MSP system at ORNL (decommissioned July 2005).",
)

X1_SSP = MachineSpec(
    name="X1-SSP",
    kind=ProcessorKind.VECTOR,
    clock_mhz=800.0,
    peak_gflops=3.2,
    stream_bw_gbs=14.9 / 4.0,
    mpi_latency_us=7.1,
    mpi_bw_gbs=6.3 / 4.0,
    topology=NetworkTopology.HYPERCUBE_4D,
    interconnect_name="Cray custom",
    node=NodeSpec(cpus_per_node=16, memory_gib=16.0),
    vector=VectorSpec(
        register_length=64,
        num_registers=32,
        num_pipes=2,
        startup_cycles=55.0,
        # The SSP's own 400 MHz two-way scalar core: 0.8 of 3.2 Gflop/s,
        # and in SSP mode *every* scalar unit participates.
        scalar_ratio=0.25,
        gather_bw_fraction=0.070,
        multistream_width=1,
    ),
    caches=(
        CacheSpec(level=0, size_kib=2048, bandwidth_gbs=38.0, shared=True),
    ),
    blas3_efficiency=0.72,
    max_processors=2048,
    notes="X1 run in single-streaming mode; report 4-SSP aggregates "
    "against one MSP as the paper does.",
)

X1E = MachineSpec(
    name="X1E",
    kind=ProcessorKind.VECTOR,
    clock_mhz=1130.0,
    peak_gflops=18.0,
    stream_bw_gbs=9.7,
    mpi_latency_us=5.0,
    mpi_bw_gbs=2.9,
    topology=NetworkTopology.HYPERCUBE_4D,
    interconnect_name="Cray custom",
    # Doubled module density: two 4-MSP nodes share memory and ports.
    node=NodeSpec(cpus_per_node=4, memory_gib=8.0, network_ports_shared_by=2),
    vector=VectorSpec(
        register_length=256,
        num_registers=32,
        num_pipes=2,
        startup_cycles=110.0,
        scalar_ratio=0.0625,
        gather_bw_fraction=0.070,
        multistream_width=4,
    ),
    caches=(
        CacheSpec(level=0, size_kib=2048, bandwidth_gbs=54.0, shared=True),
    ),
    blas3_efficiency=0.72,
    max_processors=768,
    notes="768-MSP system at ORNL; 41% faster clock than X1 without a "
    "commensurate memory-bandwidth increase.",
)

EARTH_SIMULATOR = MachineSpec(
    name="ES",
    kind=ProcessorKind.VECTOR,
    clock_mhz=1000.0,
    peak_gflops=8.0,
    stream_bw_gbs=26.3,
    mpi_latency_us=5.6,
    mpi_bw_gbs=1.5,
    topology=NetworkTopology.CROSSBAR,
    interconnect_name="custom single-stage IN crossbar",
    node=NodeSpec(cpus_per_node=8, memory_gib=16.0),
    vector=VectorSpec(
        register_length=256,
        num_registers=72,
        num_pipes=4,
        startup_cycles=70.0,
        scalar_ratio=0.125,
        # Specialized FPLRAM: word-granular random access at ~1.4 GB/s
        # (0.053 x STREAM) -- the highest gather rate *per flop* in the
        # study, which is why ES leads GTC in %peak.
        gather_bw_fraction=0.053,
    ),
    caches=(),
    blas3_efficiency=0.90,
    max_processors=5120,
    notes="640 8-CPU nodes, JAMSTEC Yokohama; no remote access.",
)

SX8 = MachineSpec(
    name="SX-8",
    kind=ProcessorKind.VECTOR,
    clock_mhz=2000.0,
    peak_gflops=16.0,
    stream_bw_gbs=41.0,
    mpi_latency_us=5.0,
    mpi_bw_gbs=2.0,
    topology=NetworkTopology.CROSSBAR,
    interconnect_name="NEC IXS",
    node=NodeSpec(cpus_per_node=8, memory_gib=128.0),
    vector=VectorSpec(
        register_length=256,
        num_registers=72,
        num_pipes=4,
        startup_cycles=70.0,
        scalar_ratio=0.125,
        # Commodity DDR2-SDRAM: "the speed for random memory accesses has
        # not been scaled accordingly" -- word-granular gather only ~1.5x
        # the ES's absolute rate despite twice the peak.
        gather_bw_fraction=0.054,
    ),
    caches=(),
    blas3_efficiency=0.85,
    max_processors=576,
    notes="36-node (later 72) system at HLRS Stuttgart; dedicated "
    "divide/sqrt hardware vs the ES.",
)

#: All platform records, keyed by canonical name.
MACHINES: dict[str, MachineSpec] = {
    m.name: m
    for m in (POWER3, ITANIUM2, OPTERON, X1, X1_SSP, X1E, EARTH_SIMULATOR, SX8)
}

#: The order used for table columns throughout the paper.
PAPER_ORDER: tuple[str, ...] = (
    "Power3",
    "Itanium2",
    "Opteron",
    "X1",
    "X1-SSP",
    "X1E",
    "ES",
    "SX-8",
)

_ALIASES = {
    "power3": "Power3",
    "seaborg": "Power3",
    "itanium2": "Itanium2",
    "thunder": "Itanium2",
    "opteron": "Opteron",
    "jacquard": "Opteron",
    "x1": "X1",
    "x1-msp": "X1",
    "x1 (msp)": "X1",
    "x1-ssp": "X1-SSP",
    "x1 (ssp)": "X1-SSP",
    "x1e": "X1E",
    "es": "ES",
    "earth simulator": "ES",
    "earth-simulator": "ES",
    "sx8": "SX-8",
    "sx-8": "SX-8",
}


def get_machine(name: str) -> MachineSpec:
    """Look up a platform by name (case-insensitive, aliases allowed).

    >>> get_machine("earth simulator").name
    'ES'
    """
    key = _ALIASES.get(name.strip().lower())
    if key is None:
        if name in MACHINES:
            return MACHINES[name]
        raise KeyError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        )
    return MACHINES[key]


def list_machines() -> list[MachineSpec]:
    """All platforms in the paper's column order."""
    return [MACHINES[n] for n in PAPER_ORDER]
