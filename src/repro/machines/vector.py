"""Vector-pipeline timing: Hockney (r_inf, n_1/2) model.

A pipelined vector unit approaches its asymptotic rate ``r_inf`` only for
long vectors; for a loop of trip count ``n`` the sustained rate is

    r(n) = r_inf * n / (n + n_half)

where ``n_half`` is the half-performance length (Hockney, *The Science of
Computer Benchmarking*).  ``n_half`` grows with pipeline depth and with
the number of parallel pipes that must all be filled; multistreamed
(X1 MSP) execution additionally quadruples the element count needed to
saturate the unit.

This is the mechanism behind two recurring observations in the paper:

* FVCAM's %peak on the vector machines falls with concurrency because
  the per-subdomain latitude count — the vectorized FFT batch width —
  shrinks ("The vector platforms also suffer from a reduction in vector
  lengths at increasing concurrencies for this fixed size problem").
* Register spilling in complex loop bodies (LBMHD's collision on the
  32-register X1) turns into extra memory traffic, modeled here as a
  spill traffic multiplier derived from register pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import MachineSpec, VectorSpec

#: Registers comfortably available to a "simple" vectorized loop body.
_BASE_REGISTER_BUDGET = 16.0


def n_half(vec: VectorSpec) -> float:
    """Half-performance vector length for this unit.

    Scaled from the architectural startup cost: each vector instruction
    pays ``startup_cycles`` of dead time across ``num_pipes`` pipe sets;
    eight pipeline stages' worth of that dead time must be amortized per
    result element, and a multistreamed unit needs its full width of
    streams in flight before any of them saturates.
    """
    base = vec.startup_cycles * vec.num_pipes / 8.0
    return base * max(1, vec.multistream_width) / max(1, vec.multistream_width // 2 or 1)


def vector_efficiency(vec: VectorSpec, avg_vl: float) -> float:
    """Fraction of vector peak sustained at mean trip count ``avg_vl``."""
    if avg_vl <= 0:
        return 0.0
    nh = n_half(vec)
    return avg_vl / (avg_vl + nh)


def spill_traffic_multiplier(vec: VectorSpec, loop_registers: float) -> float:
    """Extra unit-stride traffic factor caused by vector-register spills.

    ``loop_registers`` is the register demand of the loop body (the
    LBMHD collision loop needs ~48 live vector temporaries).  Machines
    with head-room (ES/SX-8: 72 registers) spill nothing; the X1's 32
    registers spill the excess, and every spilled value is written and
    re-read once per loop sweep.
    """
    demand = max(loop_registers, _BASE_REGISTER_BUDGET)
    if demand <= vec.num_registers:
        return 1.0
    spilled = demand - vec.num_registers
    # Each spilled register adds a store+load stream alongside the
    # loop's nominal traffic, in proportion to its share of live values.
    return 1.0 + 2.0 * spilled / demand


@dataclass(frozen=True)
class VectorPipelineModel:
    """Per-machine convenience wrapper over the Hockney formulas."""

    spec: MachineSpec

    def __post_init__(self) -> None:
        if self.spec.vector is None:
            raise ValueError(f"{self.spec.name} has no vector unit")

    @property
    def n_half(self) -> float:
        return n_half(self.spec.vector)

    def efficiency(self, avg_vl: float) -> float:
        return vector_efficiency(self.spec.vector, avg_vl)

    def sustained_gflops(self, avg_vl: float) -> float:
        """Vector-unit rate (Gflop/s) at a given mean trip count."""
        return self.spec.peak_gflops * self.efficiency(avg_vl)

    def scalar_gflops(self) -> float:
        """Rate of the attached scalar unit(s) usable in serial sections.

        In multistreamed (MSP) execution only one of the ganged scalar
        cores does useful work, which is already folded into the
        ``scalar_ratio`` of the MSP-mode spec.
        """
        return self.spec.peak_gflops * self.spec.vector.scalar_ratio
