"""Platform substrate: specs and timing models of the seven HEC systems.

The paper's Table 1 (architectural highlights) lives in
:mod:`repro.machines.catalog`; the timing behaviour derived from it in
:mod:`repro.machines.processor`, :mod:`repro.machines.memory`, and
:mod:`repro.machines.vector`.
"""

from .catalog import (
    EARTH_SIMULATOR,
    ITANIUM2,
    MACHINES,
    OPTERON,
    PAPER_ORDER,
    POWER3,
    SX8,
    WORD_BYTES,
    X1,
    X1_SSP,
    X1E,
    get_machine,
    list_machines,
)
from .memory import MemoryModel
from .processor import (
    LOOP_REGISTER_DEMAND,
    ProcessorModel,
    SuperscalarModel,
    VectorModel,
    make_model,
)
from .spec import (
    CacheSpec,
    MachineSpec,
    NetworkTopology,
    NodeSpec,
    ProcessorKind,
    ScalarSpec,
    VectorSpec,
)
from .vector import VectorPipelineModel, n_half, vector_efficiency

__all__ = [
    "CacheSpec",
    "EARTH_SIMULATOR",
    "ITANIUM2",
    "LOOP_REGISTER_DEMAND",
    "MACHINES",
    "MachineSpec",
    "MemoryModel",
    "NetworkTopology",
    "NodeSpec",
    "OPTERON",
    "PAPER_ORDER",
    "POWER3",
    "ProcessorKind",
    "ProcessorModel",
    "ScalarSpec",
    "SuperscalarModel",
    "SX8",
    "VectorModel",
    "VectorPipelineModel",
    "VectorSpec",
    "WORD_BYTES",
    "X1",
    "X1E",
    "X1_SSP",
    "get_machine",
    "list_machines",
    "make_model",
    "n_half",
    "vector_efficiency",
]
