"""repro — reproduction of "Leading Computational Methods on Scalar and
Vector HEC Platforms" (Oliker et al., SC 2005).

The package provides:

* :mod:`repro.machines` — specs and timing models of the seven evaluated
  platforms (Power3, Itanium2, Opteron, Cray X1/X1E, Earth Simulator,
  NEC SX-8);
* :mod:`repro.network` — interconnect topologies and collective costs;
* :mod:`repro.simmpi` — an in-process simulated MPI runtime with per-rank
  virtual clocks and IPM-style communication tracing;
* :mod:`repro.apps` — working NumPy implementations of the paper's four
  applications: FVCAM (finite-volume atmospheric dynamics), GTC
  (gyrokinetic particle-in-cell), LBMHD3D (lattice Boltzmann
  magneto-hydrodynamics), PARATEC (plane-wave DFT);
* :mod:`repro.perfmodel` — roofline/Amdahl sustained-rate estimation and
  paper-style reporting;
* :mod:`repro.experiments` — one module per table/figure of the paper's
  evaluation, regenerating each from the models.

Quickstart::

    from repro import get_machine, Communicator
    from repro.apps.lbmhd import LBMHD3D, LBMHDParams

    sim = LBMHD3D(LBMHDParams(shape=(32, 32, 32)), Communicator(8))
    sim.run(steps=10)
"""

from .machines import MachineSpec, get_machine, list_machines
from .perfmodel import PerfResult, ResultTable
from .simmpi import Communicator, Message
from .workload import Work, WorkloadMeter

__version__ = "1.1.0"

__all__ = [
    "Communicator",
    "MachineSpec",
    "Message",
    "PerfResult",
    "ResultTable",
    "Work",
    "WorkloadMeter",
    "__version__",
    "get_machine",
    "list_machines",
]
