"""repro.resilience — faults, self-healing policies, checkpoint/restart.

The subsystem has three layers, mirroring the runtime's layering:

* :mod:`repro.resilience.inject` — deterministic, seedable fault
  injectors wrapping the byte-moving
  :class:`~repro.simmpi.transport.Transport` (drops, bit-flips, latency
  spikes, whole-rank failure), configured by a declarative
  :class:`FaultPlan`;
* :mod:`repro.resilience.policy` — CRC detection, retry-with-backoff
  and restart policies applied by the
  :class:`~repro.simmpi.comm.Communicator` facade, every second charged
  to the virtual clock and the phase ledger's ``recovery`` column;
* :mod:`repro.resilience.checkpoint` — the :class:`Checkpointable`
  protocol the four solvers implement, plus in-memory and on-disk
  snapshot stores the harness restarts from.

The contract that makes the whole thing testable: a faulted-but-
recovered run produces **bitwise-identical physics** to the fault-free
run with the same seed; only virtual time (and the recovery column)
differs.
"""

from .checkpoint import (
    Checkpoint,
    Checkpointable,
    DiskCheckpointStore,
    MemoryCheckpointStore,
    own_tree,
    snapshot_nbytes,
)
from .inject import (
    BitFlip,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    LatencySpike,
    MessageDrop,
    RankFailure,
)
from .policy import (
    RankFailureError,
    RecoveryStats,
    ResilienceError,
    RetryPolicy,
    UnrecoverableMessageError,
    payload_crc,
)

__all__ = [
    "BitFlip",
    "Checkpoint",
    "Checkpointable",
    "DiskCheckpointStore",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "LatencySpike",
    "MemoryCheckpointStore",
    "MessageDrop",
    "RankFailure",
    "RankFailureError",
    "RecoveryStats",
    "ResilienceError",
    "RetryPolicy",
    "UnrecoverableMessageError",
    "own_tree",
    "payload_crc",
    "snapshot_nbytes",
]
