"""Self-healing communicator policies: detection, retry, and restart.

The paper's platforms keep multi-hour runs alive through MTBF-aware
batch practice; this module is the simulated runtime's version of that
discipline.  A :class:`RetryPolicy` parameterizes how the
:class:`~repro.simmpi.comm.Communicator` facade reacts when the fault
injector misbehaves at the transport seam:

* every point-to-point payload carries a CRC-32 checksum; a mismatch on
  arrival (bit-flip corruption) or a missing arrival (drop, noticed
  after ``detect_timeout``) triggers a retransmit;
* retransmits back off exponentially (``backoff_base *
  backoff_factor**(attempt-1)``) and give up after ``max_retries``
  attempts with :class:`UnrecoverableMessageError`;
* checkpoint writes and post-failure restores are charged at
  ``checkpoint_bandwidth`` / ``restore_bandwidth`` aggregate bytes per
  second, plus a flat ``restart_penalty`` for failure detection and
  re-coordination.

Every second charged by these policies lands on the
:class:`~repro.simmpi.clock.VirtualClock` and in the phase ledger's
``recovery`` column, never in compute/comm/wait — a faulted run's extra
cost is therefore directly readable from the IPM-style table.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np


def payload_crc(payload: np.ndarray) -> int:
    """CRC-32 of a message payload's bytes (the wire checksum)."""
    arr = np.ascontiguousarray(payload)
    return zlib.crc32(arr.tobytes())


class ResilienceError(RuntimeError):
    """Base class of everything the resilience layer can raise."""


class UnrecoverableMessageError(ResilienceError):
    """A message kept failing past ``RetryPolicy.max_retries``."""


class RankFailureError(ResilienceError):
    """A simulated rank died; only checkpoint/restart can continue.

    Raised from inside the communicator (at the transport seam) or at a
    step boundary.  The harness catches it when a checkpoint store is
    available, restores the last snapshot, and replays.
    """

    def __init__(self, rank: int, step: int) -> None:
        super().__init__(
            f"rank {rank} failed at step {step}; restore from the last "
            "checkpoint to continue"
        )
        self.rank = rank
        self.step = step


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the self-healing communicator (all times virtual seconds).

    The defaults are deliberately visible at laptop scale: a handful of
    retransmits shows up as milliseconds in the recovery column even on
    the ideal (zero-cost) machine, because detection and backoff are
    protocol costs, not wire costs.
    """

    #: Retransmit attempts per message before giving up.
    max_retries: int = 8
    #: First-retry backoff, seconds.
    backoff_base: float = 1e-4
    #: Multiplier applied per further attempt.
    backoff_factor: float = 2.0
    #: Receiver-side timeout that detects a dropped message.
    detect_timeout: float = 1e-3
    #: Receiver-side cost of a checksum NACK (corruption is detected on
    #: arrival, cheaper than a drop timeout).
    nack_time: float = 1e-4
    #: Flat cost of noticing a dead rank and re-coordinating the job.
    restart_penalty: float = 5e-3
    #: Aggregate bytes/second for checkpoint writes.
    checkpoint_bandwidth: float = 4e9
    #: Aggregate bytes/second for reading a checkpoint back.
    restore_bandwidth: float = 4e9

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.checkpoint_bandwidth <= 0 or self.restore_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retransmit number ``attempt`` (>= 1)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        return self.backoff_base * self.backoff_factor ** (attempt - 1)

    def checkpoint_time(self, nbytes: int, nprocs: int) -> float:
        """Per-rank virtual seconds to write one checkpoint."""
        return nbytes / self.checkpoint_bandwidth / max(nprocs, 1)

    def restore_time(self, nbytes: int, nprocs: int) -> float:
        """Per-rank virtual seconds to read one checkpoint back."""
        return nbytes / self.restore_bandwidth / max(nprocs, 1)


@dataclass
class RecoveryStats:
    """Counters of everything the resilience layer detected and repaired."""

    drops_detected: int = 0
    corruptions_detected: int = 0
    delays_absorbed: int = 0
    resends: int = 0
    resend_bytes: float = 0.0
    rank_failures: int = 0
    restarts: int = 0
    replayed_steps: int = 0
    checkpoints: int = 0
    checkpoint_bytes: float = 0.0
    #: Total virtual rank-seconds booked in the recovery column.
    recovery_rank_seconds: float = 0.0
    #: Host (real) seconds spent serializing checkpoints.
    checkpoint_host_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {k: float(getattr(self, k)) for k in self.__dataclass_fields__}

    def merge(self, other: "RecoveryStats") -> None:
        for k in self.__dataclass_fields__:
            setattr(self, k, getattr(self, k) + getattr(other, k))
