"""Checkpoint/restart for the four solvers (and anything Checkpointable).

A checkpoint is the solver's *mutable physics state*: exactly the
arrays a deterministic replay needs to reproduce every later step
bitwise.  Derived per-step quantities (GTC's E-field, FVCAM's padded
halos, arena scratch) are recomputed on replay and deliberately
excluded — the paper's production codes restart the same way, from
prognostic state only.

Two stores are provided.  :class:`MemoryCheckpointStore` keeps the last
snapshot per tag in RAM (the chaos experiments and the overhead
benchmark).  :class:`DiskCheckpointStore` flattens the nested payload
into one ``.npz`` per tag under a directory, so a checkpoint survives
the process — the on-disk format is the flatten/unflatten pair below
and is documented in ``docs/resilience.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Checkpointable(Protocol):
    """Structural protocol of a solver that can save/restore itself.

    ``checkpoint_state`` returns a JSON-shaped tree (dicts, lists,
    scalars) whose leaves are freshly copied NumPy arrays — the caller
    owns the copies.  ``restore_state`` overwrites the solver's mutable
    state from such a tree; after it returns, stepping the solver
    replays bitwise what the original run computed from that point.
    """

    def checkpoint_state(self) -> dict[str, Any]: ...

    def restore_state(self, snapshot: dict[str, Any]) -> None: ...


def snapshot_nbytes(tree: Any) -> int:
    """Total array bytes of a (nested) checkpoint payload."""
    if isinstance(tree, np.ndarray):
        return int(tree.nbytes)
    if isinstance(tree, dict):
        return sum(snapshot_nbytes(v) for v in tree.values())
    if isinstance(tree, (list, tuple)):
        return sum(snapshot_nbytes(v) for v in tree)
    return 0


def copy_tree(tree: Any) -> Any:
    """Deep-copy a nested payload (arrays copied, scalars passed)."""
    if isinstance(tree, np.ndarray):
        return tree.copy()
    if isinstance(tree, dict):
        return {k: copy_tree(v) for k, v in tree.items()}
    if isinstance(tree, list):
        return [copy_tree(v) for v in tree]
    if isinstance(tree, tuple):
        return tuple(copy_tree(v) for v in tree)
    return tree


def own_tree(tree: Any) -> Any:
    """Take ownership of a payload without copying what is already owned.

    The ``copy=False`` fast path hands the store the caller's tree.
    That is only safe for leaves nothing else can reach — an array that
    *owns* its buffer.  A view (sliced, transposed, or broadcast from a
    live solver array) still shares memory with whatever it was taken
    from, so the caller's next step would silently rewrite the snapshot.
    Views are therefore copied (which also bakes non-contiguous and
    zero-size ``(0, n)`` views down to clean owned arrays of the same
    shape); owned arrays pass through untouched, keeping the transfer
    zero-copy for ``Checkpointable.checkpoint_state`` payloads, which
    are fresh copies by contract.
    """
    if isinstance(tree, np.ndarray):
        if tree.base is not None or not tree.flags.owndata:
            return tree.copy()
        return tree
    if isinstance(tree, dict):
        return {k: own_tree(v) for k, v in tree.items()}
    if isinstance(tree, list):
        return [own_tree(v) for v in tree]
    if isinstance(tree, tuple):
        return tuple(own_tree(v) for v in tree)
    return tree


#: Container markers used by the flat form.  ``()`` keeps tuples apart
#: from lists so a round trip is type-faithful.
_MARKERS = {"{}", "[]", "()"}


def flatten_tree(tree: Any, prefix: str = "") -> dict[str, Any]:
    """Flatten a nested payload to ``{"a/0/b": leaf}`` (npz keys).

    Dict keys must be strings without ``/`` (the path separator) and
    must not collide with the container markers — otherwise two
    distinct leaves would flatten onto one key and the round trip would
    silently drop data, so both raise ``ValueError`` instead.
    """
    out: dict[str, Any] = {}
    if isinstance(tree, dict):
        for k in tree:
            if not isinstance(k, str) or "/" in k or k in _MARKERS:
                raise ValueError(
                    f"checkpoint dict keys must be strings without '/' "
                    f"and not {sorted(_MARKERS)}; got {k!r}"
                )
        items: Any = tree.items()
        marker = "{}"
    elif isinstance(tree, (list, tuple)):
        items = ((str(i), v) for i, v in enumerate(tree))
        marker = "[]" if isinstance(tree, list) else "()"
    else:
        out[prefix] = tree
        return out
    out[f"{prefix}/{marker}" if prefix else marker] = len(
        tree
    )  # container shape marker
    for k, v in items:
        key = f"{prefix}/{k}" if prefix else str(k)
        out.update(flatten_tree(v, key))
    return out


def unflatten_tree(flat: dict[str, Any]) -> Any:
    """Inverse of :func:`flatten_tree`."""

    def build(prefix: str) -> Any:
        for marker, seq in (("{}", False), ("[]", True), ("()", True)):
            key = f"{prefix}/{marker}" if prefix else marker
            if key in flat:
                if seq:
                    n = int(flat[key])
                    children = [
                        build(f"{prefix}/{i}" if prefix else str(i))
                        for i in range(n)
                    ]
                    return tuple(children) if marker == "()" else children
                names = sorted(
                    {
                        k[len(prefix) + 1 if prefix else 0 :].split("/", 1)[0]
                        for k in flat
                        if (k.startswith(prefix + "/") if prefix else True)
                        and k not in (key,)
                    }
                    - _MARKERS
                )
                return {
                    c: build(f"{prefix}/{c}" if prefix else c)
                    for c in names
                }
        return flat[prefix]

    return build("")


@dataclass
class Checkpoint:
    """One saved snapshot: which step it captures, and the payload."""

    step: int
    payload: dict[str, Any]
    nbytes: int


class MemoryCheckpointStore:
    """Keeps the most recent checkpoint per tag in process memory."""

    def __init__(self) -> None:
        self._latest: dict[str, Checkpoint] = {}
        #: Host seconds spent copying payloads into the store.
        self.save_seconds = 0.0

    def save(
        self,
        tag: str,
        step: int,
        payload: dict[str, Any],
        copy: bool = True,
    ) -> Checkpoint:
        """Store a snapshot; with ``copy=False`` the store takes
        ownership of ``payload`` instead of deep-copying it — cheap for
        payloads of freshly-owned arrays, which is exactly what
        ``Checkpointable.checkpoint_state`` returns.  Leaves that are
        *views* of someone else's memory are still copied (see
        :func:`own_tree`): a caller mutating the viewed array after the
        save must not rewrite the stored snapshot."""
        t0 = time.perf_counter()
        ckpt = Checkpoint(
            step=step,
            payload=copy_tree(payload) if copy else own_tree(payload),
            nbytes=snapshot_nbytes(payload),
        )
        self._latest[tag] = ckpt
        self.save_seconds += time.perf_counter() - t0
        return ckpt

    def load(self, tag: str) -> Checkpoint | None:
        ckpt = self._latest.get(tag)
        if ckpt is None:
            return None
        # hand out copies: the caller will mutate the restored state
        return Checkpoint(
            step=ckpt.step, payload=copy_tree(ckpt.payload),
            nbytes=ckpt.nbytes,
        )

    def tags(self) -> list[str]:
        return sorted(self._latest)


class DiskCheckpointStore:
    """One ``<tag>.npz`` per tag under ``root`` (flattened payload)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.save_seconds = 0.0

    def _path(self, tag: str) -> Path:
        safe = tag.replace("/", "_")
        return self.root / f"{safe}.npz"

    def save(
        self,
        tag: str,
        step: int,
        payload: dict[str, Any],
        copy: bool = True,
    ) -> Checkpoint:
        """Serialize a snapshot to ``<tag>.npz``.

        The canonical copy is the file, so serialization itself never
        aliases; ``copy`` governs the *returned* ``Checkpoint.payload``,
        which must not stay entangled with the caller's live arrays
        either way — ``copy=True`` hands back a deep copy (the caller
        keeps ownership of what it passed in), ``copy=False`` transfers
        ownership, detaching any view leaves (see :func:`own_tree`)."""
        t0 = time.perf_counter()
        flat = flatten_tree(payload)
        arrays = {
            f"k{i}": np.asarray(v) for i, v in enumerate(flat.values())
        }
        keys = np.array(list(flat), dtype=object)
        np.savez(
            self._path(tag),
            __keys__=keys,
            __step__=np.int64(step),
            **arrays,
        )
        nbytes = snapshot_nbytes(payload)
        owned = copy_tree(payload) if copy else own_tree(payload)
        self.save_seconds += time.perf_counter() - t0
        return Checkpoint(step=step, payload=owned, nbytes=nbytes)

    def load(self, tag: str) -> Checkpoint | None:
        path = self._path(tag)
        if not path.exists():
            return None
        with np.load(path, allow_pickle=True) as data:
            keys = list(data["__keys__"])
            step = int(data["__step__"])
            flat: dict[str, Any] = {}
            for i, key in enumerate(keys):
                arr = data[f"k{i}"]
                flat[str(key)] = arr[()] if arr.ndim == 0 else arr
        payload = unflatten_tree(flat)
        return Checkpoint(
            step=step, payload=payload, nbytes=snapshot_nbytes(payload)
        )

    def tags(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob("*.npz"))
