"""Deterministic, seedable fault injection at the Transport seam.

A :class:`FaultPlan` is a declarative list of fault specs — *which*
phase, *which* rank pair, *which* step, *what* goes wrong — plus a seed
for the rate-based specs.  A :class:`FaultInjector` binds a plan to a
:class:`~repro.simmpi.transport.Transport` and sits between the
:class:`~repro.simmpi.comm.Communicator` facade and the transport:
payloads flow through :meth:`FaultInjector.deliver_faulty`, which moves
the bytes via the wrapped transport and then perturbs the *delivered
copies* according to the plan (the sender's buffers are never touched,
so a retransmit always has the pristine payload available).

Fault kinds, mirroring what the paper's platforms actually suffer:

* :class:`MessageDrop` — the payload never arrives (receiver times out);
* :class:`BitFlip` — one bit of the delivered payload is flipped
  (caught by the CRC-32 the facade checks on arrival);
* :class:`LatencySpike` — the payload arrives intact but late (a
  straggler link; pure recovery-column time, no retransmit);
* :class:`RankFailure` — a whole rank dies at a given step; raises
  :class:`~repro.resilience.policy.RankFailureError` so the harness can
  restore from the last checkpoint.

Determinism: specs with ``rate < 1`` draw from a private
``np.random.default_rng(plan.seed)`` in message-posting order, which is
serialized by construction (communication is forbidden inside
``map_ranks`` regions), so a plan replays identically under any
executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..simmpi.transport import Transport
from .policy import RankFailureError

#: Message-fault outcomes reported to the facade.
OK = "ok"
DROPPED = "dropped"
CORRUPT = "corrupt"
DELAYED = "delayed"


@dataclass(frozen=True)
class FaultSpec:
    """Matching predicate shared by every fault kind.

    ``None`` fields match anything.  ``step``/``phase`` select *when*,
    ``src``/``dst`` select *which rank pair* (global rank ids), and
    ``rate`` makes the fault probabilistic (seeded; ``1.0`` is
    deterministic).  ``repeat`` is how many successive transmission
    attempts of one message the fault keeps hitting: the default 1
    faults the first attempt only, so the first retransmit succeeds.
    """

    phase: str | None = None
    step: int | None = None
    src: int | None = None
    dst: int | None = None
    rate: float = 1.0
    repeat: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")

    def matches(
        self, *, step: int, phase: str | None, src: int, dst: int,
        attempt: int,
    ) -> bool:
        if attempt >= self.repeat:
            return False
        if self.step is not None and step != self.step:
            return False
        if self.phase is not None and phase != self.phase:
            return False
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        return True


@dataclass(frozen=True)
class MessageDrop(FaultSpec):
    """The message vanishes on the wire."""


@dataclass(frozen=True)
class BitFlip(FaultSpec):
    """One bit of the delivered payload flips (CRC catches it)."""

    #: Which bit of which byte to flip; clamped to the payload size so
    #: the same spec works for any message it matches.
    byte_index: int = 0
    bit: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.bit < 8:
            raise ValueError("bit must be in [0, 8)")


@dataclass(frozen=True)
class LatencySpike(FaultSpec):
    """The payload arrives intact but ``extra_s`` virtual seconds late."""

    extra_s: float = 1e-3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_s < 0:
            raise ValueError("extra_s must be >= 0")


@dataclass(frozen=True)
class RankFailure:
    """Rank ``rank`` dies at step ``step`` (fires exactly once).

    The failure surfaces at the rank's next transport activity within
    the step, or at the step boundary for communication-free steps.
    """

    rank: int = 0
    step: int = 0

    def __post_init__(self) -> None:
        if self.rank < 0 or self.step < 0:
            raise ValueError("rank and step must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seedable schedule of injected faults."""

    faults: tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for f in self.faults:
            if not isinstance(f, (FaultSpec, RankFailure)):
                raise TypeError(
                    f"{f!r} is not a FaultSpec or RankFailure"
                )

    @property
    def message_faults(self) -> tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if isinstance(f, FaultSpec))

    @property
    def rank_failures(self) -> tuple[RankFailure, ...]:
        return tuple(f for f in self.faults if isinstance(f, RankFailure))


@dataclass
class Outcome:
    """What the injector did to one message of one attempt."""

    kind: str
    payload: np.ndarray | None = None
    extra_s: float = 0.0


def _flip_bit(payload: np.ndarray, spec: BitFlip) -> np.ndarray:
    """A corrupted *copy* of the payload (sender's buffer untouched)."""
    corrupted = np.array(payload, copy=True)
    raw = corrupted.view(np.uint8).reshape(-1)
    raw[spec.byte_index % raw.size] ^= np.uint8(1 << spec.bit)
    return corrupted


class FaultInjector(Transport):
    """A :class:`Transport` wrapper that perturbs delivered payloads.

    Installed between the Communicator facade and the real transport by
    :meth:`Communicator.enable_resilience`.  Inherits every collective
    pattern unchanged from the wrapped transport (faults live on the
    point-to-point wire, where the paper's fabrics actually flake) and
    adds the rank-failure trigger to every byte-moving entry point so a
    scheduled death surfaces mid-run, whatever the app's traffic mix.
    """

    def __init__(
        self, plan: FaultPlan, transport: Transport | None = None
    ) -> None:
        self.plan = plan
        self.inner = transport if transport is not None else Transport()
        self.rng = np.random.default_rng(plan.seed)
        self.step = 0
        self._fired_failures: set[int] = set()
        self._in_step = False

    # -- step context (driven by the harness / the app loop) -----------

    def begin_step(self, step: int) -> None:
        """Declare the application step faults are matched against."""
        self.step = step
        self._in_step = True

    def end_step(self) -> None:
        """Close the step; fires a scheduled failure the step's (lack
        of) communication never surfaced."""
        self._in_step = False
        self.check_rank_failure()

    def pending_rank_failure(self) -> RankFailure | None:
        """The not-yet-fired failure scheduled for the current step."""
        for i, f in enumerate(self.plan.rank_failures):
            if i not in self._fired_failures and f.step == self.step:
                return f
        return None

    def check_rank_failure(self) -> None:
        """Raise :class:`RankFailureError` if a death is due now."""
        for i, f in enumerate(self.plan.rank_failures):
            if i not in self._fired_failures and f.step == self.step:
                self._fired_failures.add(i)
                raise RankFailureError(rank=f.rank, step=f.step)

    # -- message faulting ----------------------------------------------

    def judge(
        self, *, phase: str | None, src: int, dst: int, attempt: int
    ) -> FaultSpec | None:
        """The first plan spec that fires for one transmission attempt.

        ``src``/``dst`` are global rank ids.  Rate draws happen here,
        in posting order, so outcomes are a pure function of the plan
        seed and the (serialized) communication schedule.
        """
        for spec in self.plan.message_faults:
            if not spec.matches(
                step=self.step, phase=phase, src=src, dst=dst,
                attempt=attempt,
            ):
                continue
            if spec.rate >= 1.0 or self.rng.random() < spec.rate:
                return spec
        return None

    def deliver_faulty(
        self,
        messages: Sequence,
        *,
        phase: str | None,
        attempts: Sequence[int],
        granks: Sequence[tuple[int, int]],
        copy: bool = True,
    ) -> list[Outcome]:
        """Move one batch of messages, applying the plan.

        ``attempts[k]`` is how many times ``messages[k]`` has already
        been transmitted; ``granks[k]`` is its global ``(src, dst)``
        pair.  Returns one :class:`Outcome` per message, aligned with
        the input order (the facade reassembles posting order from
        them).  Raises mid-batch if a rank failure is due.
        """
        self.check_rank_failure()
        delivered = self.inner.deliver(messages, copy=copy)
        cursors: dict[int, int] = {}
        outcomes: list[Outcome] = []
        for k, m in enumerate(messages):
            i = cursors.get(m.dst, 0)
            cursors[m.dst] = i + 1
            payload = delivered[m.dst][i]
            spec = self.judge(
                phase=phase,
                src=granks[k][0],
                dst=granks[k][1],
                attempt=attempts[k],
            )
            if spec is None or (
                isinstance(spec, BitFlip) and payload.nbytes == 0
            ):
                # zero-byte payloads have no bits to flip
                outcomes.append(Outcome(OK, payload))
            elif isinstance(spec, MessageDrop):
                outcomes.append(Outcome(DROPPED, None))
            elif isinstance(spec, BitFlip):
                outcomes.append(Outcome(CORRUPT, _flip_bit(payload, spec)))
            elif isinstance(spec, LatencySpike):
                outcomes.append(Outcome(DELAYED, payload, spec.extra_s))
            else:  # a bare FaultSpec matches but names no failure mode
                outcomes.append(Outcome(OK, payload))
        return outcomes

    def judge_phase(
        self,
        *,
        phase: str | None,
        granks: Sequence[tuple[int, int]],
        nbytes: Sequence[int],
        attempt: int = 0,
    ) -> list[tuple[int, FaultSpec]]:
        """Accounting-only faulting for :meth:`Communicator.exchange_phase`.

        The caller already moved the bytes in bulk, so nothing can be
        corrupted — but the *wire* the accounting models still flakes.
        Returns ``(message_index, spec)`` for every message the plan
        faults, so the facade can charge the retransmit/delay time it
        would have cost.
        """
        hits: list[tuple[int, FaultSpec]] = []
        for k, (src, dst) in enumerate(granks):
            spec = self.judge(
                phase=phase, src=src, dst=dst, attempt=attempt
            )
            if spec is not None and not (
                isinstance(spec, BitFlip) and int(nbytes[k]) == 0
            ):
                hits.append((k, spec))
        return hits

    # -- Transport interface -------------------------------------------

    def deliver(self, messages: Sequence, copy: bool = True):
        """Plain transport delivery with the failure trigger attached.

        Used if the injector is installed as a raw transport; message
        faults need the facade's attempt bookkeeping and are only
        applied through :meth:`deliver_faulty`.
        """
        self.check_rank_failure()
        return self.inner.deliver(messages, copy=copy)

    def reduce(self, contributions, op: str = "sum"):
        self.check_rank_failure()
        return self.inner.reduce(contributions, op)

    def replicate(self, result, nprocs: int):
        return self.inner.replicate(result, nprocs)

    def scatter_blocks(self, total, nprocs: int):
        return self.inner.scatter_blocks(total, nprocs)

    def scan(self, contributions, op: str = "sum"):
        self.check_rank_failure()
        return self.inner.scan(contributions, op)

    def alltoallv(self, rows, copy: bool = True):
        self.check_rank_failure()
        return self.inner.alltoallv(rows, copy=copy)

    def allgather(self, contributions, copy: bool = True):
        self.check_rank_failure()
        return self.inner.allgather(contributions, copy=copy)

    def gather(self, contributions):
        self.check_rank_failure()
        return self.inner.gather(contributions)
