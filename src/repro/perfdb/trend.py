"""Paired-ratio trend and regression detection across PRs.

Records sharing one :meth:`RunRecord.series_key` are a trajectory:
the same measured cell, recorded by successive PRs.  Within each
trajectory (ordered by PR tag, then ingest order), consecutive pairs
are compared on wall seconds *per step*, and a pair whose ratio
exceeds the applicable threshold is a :class:`Regression`.

Thresholds are **host-aware** because absolute wall-clock is only
comparable on comparable hardware: a pair measured on the same named
host with the same core count uses the tight ``same_host_ratio``; a
pair spanning different hosts — or whose host was never recorded,
which is true of every pre-perfdb ``BENCH_*.json`` — uses the loose
``cross_host_ratio``.  The historical trajectory (recorded across
unknown CI containers, up to ~1.9x apart on identical code) therefore
passes, while a genuine 2x slowdown measured on one machine is
flagged.

:func:`inject_slowdown` synthesizes exactly that worst case — a
same-host copy of each trajectory's latest point at ``factor`` times
the wall-clock — which is how the CI job proves the detector has
teeth without waiting for a real regression.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable

from .record import RunRecord


@dataclass(frozen=True)
class TrendPolicy:
    """Detection thresholds (ratios of wall seconds per step)."""

    #: Flag when new/old exceeds this and both ran on one known host.
    same_host_ratio: float = 1.8
    #: Flag when new/old exceeds this across (or without) host identity.
    cross_host_ratio: float = 3.0
    #: Ignore points faster than this — sub-millisecond timings are
    #: dominated by scheduler noise, not code.
    min_wall_s: float = 1e-3


@dataclass(frozen=True)
class Regression:
    """One flagged consecutive pair within a series."""

    series: tuple
    label: str
    before: RunRecord
    after: RunRecord
    ratio: float
    threshold: float
    same_host: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "series": self.label,
            "ratio": self.ratio,
            "threshold": self.threshold,
            "same_host": self.same_host,
            "before": {
                "source": self.before.source,
                "pr": self.before.pr,
                "host": self.before.host,
                "wall_s": self.before.wall_s,
            },
            "after": {
                "source": self.after.source,
                "pr": self.after.pr,
                "host": self.after.host,
                "wall_s": self.after.wall_s,
            },
        }

    def describe(self) -> str:
        where = "same host" if self.same_host else "cross-host"
        return (
            f"{self.label}: {self.ratio:.2f}x slower "
            f"({self.before.wall_per_step:.6f} -> "
            f"{self.after.wall_per_step:.6f} s/step, "
            f"{self.before.source or '?'} -> {self.after.source or '?'}, "
            f"{where} threshold {self.threshold}x)"
        )


def _ordered_series(
    records: Iterable[RunRecord],
) -> dict[tuple, list[RunRecord]]:
    """Series buckets in trajectory order (pr tag, then input order)."""
    seq: dict[tuple, list[tuple[int, int | None, RunRecord]]] = {}
    for i, rec in enumerate(records):
        seq.setdefault(rec.series_key(), []).append((i, rec.pr, rec))
    out: dict[tuple, list[RunRecord]] = {}
    for key, items in seq.items():
        items.sort(key=lambda t: (t[1] is None, t[1] if t[1] is not None else 0, t[0]))
        out[key] = [rec for _, _, rec in items]
    return out


def _same_host(a: RunRecord, b: RunRecord) -> bool:
    return (
        a.host is not None
        and a.host == b.host
        and a.cpu_count == b.cpu_count
    )


def detect_regressions(
    records: Iterable[RunRecord],
    policy: TrendPolicy | None = None,
) -> list[Regression]:
    """Every consecutive same-series pair breaching its threshold."""
    policy = policy or TrendPolicy()
    findings: list[Regression] = []
    for key, series in _ordered_series(records).items():
        for before, after in zip(series, series[1:]):
            a, b = before.wall_per_step, after.wall_per_step
            if (
                before.wall_s < policy.min_wall_s
                or after.wall_s < policy.min_wall_s
                or a <= 0.0
            ):
                continue
            ratio = b / a
            same = _same_host(before, after)
            threshold = (
                policy.same_host_ratio if same else policy.cross_host_ratio
            )
            if ratio >= threshold:
                findings.append(
                    Regression(
                        series=key,
                        label=after.series_label,
                        before=before,
                        after=after,
                        ratio=ratio,
                        threshold=threshold,
                        same_host=same,
                    )
                )
    findings.sort(key=lambda f: f.ratio, reverse=True)
    return findings


def series_trends(
    records: Iterable[RunRecord],
) -> list[dict[str, Any]]:
    """Per-series trajectory summaries for the ``report`` view."""
    out: list[dict[str, Any]] = []
    for key, series in _ordered_series(records).items():
        points = [
            {
                "source": r.source,
                "pr": r.pr,
                "host": r.host,
                "wall_s": r.wall_s,
                "wall_per_step": r.wall_per_step,
                "gflops": r.gflops,
            }
            for r in series
        ]
        first, last = series[0], series[-1]
        net = (
            last.wall_per_step / first.wall_per_step
            if first.wall_per_step > 0
            else None
        )
        out.append(
            {
                "series": last.series_label,
                "points": points,
                "net_ratio": net,
            }
        )
    out.sort(key=lambda s: s["series"])
    return out


def inject_slowdown(
    records: Iterable[RunRecord],
    factor: float = 2.0,
    *,
    source: str = "synthetic-slowdown",
) -> list[RunRecord]:
    """Records plus a synthetic slowed copy of each series' last point.

    The synthetic point keeps the original's host identity, so on
    series with recorded host facts it forms a same-host pair —
    the tight threshold applies and :func:`detect_regressions` must
    flag it.  Used by ``repro-perfdb check --inject-slowdown`` (and the
    tests) to prove the detector trips.
    """
    if factor <= 0:
        raise ValueError("factor must be > 0")
    out = list(records)
    for series in _ordered_series(out).values():
        last = series[-1]
        out.append(
            replace(
                last,
                wall_s=last.wall_s * factor,
                gflops=(
                    last.gflops / factor
                    if last.gflops is not None
                    else None
                ),
                source=source,
                pr=(last.pr + 1) if last.pr is not None else None,
            )
        )
    return out
