"""Rendered views over the database: trend, shootout, phases, roofline.

These are the paper's presentation layer pointed at our own trajectory:
the shootout is Gflop/s by app x (executor, kernel backend) — the
cross-PR backend comparison; the phase breakdown is the IPM-style
compute/comm/sync/recovery split campaign records carry; the roofline
report reuses :class:`repro.perfmodel.roofline.Roofline` to place each
machine-modeled record against its platform's attainable envelope.
"""

from __future__ import annotations

from typing import Iterable

from .query import pivot
from .record import RunRecord
from .trend import series_trends


def render_trend(records: Iterable[RunRecord]) -> str:
    """Per-series wall-clock trajectory across PR tags."""
    trends = series_trends(records)
    if not trends:
        return "no records"
    lines = ["trajectory (wall seconds per step, by series)"]
    for t in trends:
        pts = " -> ".join(
            f"{p['wall_per_step']:.5f}"
            + (f" (PR{p['pr']})" if p["pr"] is not None else "")
            for p in t["points"]
        )
        net = t["net_ratio"]
        net_txt = f"   net {net:.2f}x" if net is not None else ""
        lines.append(f"  {t['series']}: {pts}{net_txt}")
    return "\n".join(lines)


def render_shootout(records: Iterable[RunRecord]) -> str:
    """Gflop/s by app x (executor, kernel backend) — who wins where."""
    rows = [r for r in records if r.gflops is not None]
    if not rows:
        return "no records carry Gflop/s"
    return pivot(
        rows,
        rows=("app",),
        cols=("executor", "kernel_backend"),
        value="gflops",
        agg="max",
    ).render()


def render_phase_breakdown(records: Iterable[RunRecord]) -> str:
    """Compute/comm/sync/recovery seconds for records that carry them."""
    rows = [r for r in records if r.compute_s is not None]
    if not rows:
        return "no records carry phase breakdowns"
    lines = [
        "per-run phase breakdown (mean rank-seconds over the run)",
        f"{'record':<44} {'compute':>9} {'comm':>9} "
        f"{'sync':>9} {'recov':>9} {'MB':>9} {'msgs':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r.series_label:<44} {r.compute_s:>9.4f} "
            f"{(r.comm_s or 0.0):>9.4f} {(r.sync_s or 0.0):>9.4f} "
            f"{(r.recovery_s or 0.0):>9.4f} "
            f"{(r.nbytes or 0.0) / 1e6:>9.3f} "
            f"{(r.messages or 0.0):>8.0f}"
        )
    return "\n".join(lines)


def render_roofline(records: Iterable[RunRecord]) -> str:
    """Measured Gflop/s vs the machine model's attainable envelope.

    Only records that name a machine model *and* carry both a flop
    rate and a phase breakdown (for the bytes side of the intensity)
    can be placed; others are skipped.
    """
    from ..machines.catalog import get_machine
    from ..perfmodel.roofline import Roofline

    placed = []
    for r in records:
        if r.machine is None or r.gflops is None:
            continue
        try:
            spec = get_machine(r.machine)
        except (KeyError, ValueError):
            continue
        roof = Roofline(spec)
        line = {
            "record": r,
            "peak": roof.peak,
            "ridge": roof.ridge_intensity,
        }
        if r.nbytes and r.compute_s is not None and r.wall_s > 0:
            # modeled flop volume over measured byte volume: the
            # record's achieved computational intensity
            flops = r.gflops * 1e9 * r.wall_s
            intensity = flops / r.nbytes
            line["intensity"] = intensity
            line["attainable"] = roof.attainable(intensity)
        placed.append(line)
    if not placed:
        return "no records name a cataloged machine with a flop rate"
    lines = [
        "roofline placement (measured vs attainable, Gflop/s)",
        f"{'record':<44} {'machine':>10} {'measured':>9} "
        f"{'peak':>8} {'intens.':>8} {'attain.':>8}",
    ]
    for line in placed:
        r = line["record"]
        intensity = line.get("intensity")
        attainable = line.get("attainable")
        int_txt = f"{intensity:>8.2f}" if intensity is not None else f"{'-':>8}"
        att_txt = (
            f"{attainable:>8.2f}" if attainable is not None else f"{'-':>8}"
        )
        lines.append(
            f"{r.series_label:<44} {r.machine:>10} {r.gflops:>9.3f} "
            f"{line['peak']:>8.1f} {int_txt} {att_txt}"
        )
    return "\n".join(lines)
