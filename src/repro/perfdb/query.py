"""Filter / group / pivot over record lists.

The store answers column-equality queries; this module does the
in-memory shaping on top: grouping by arbitrary field tuples and the
pivot the shootout and cross-PR views are built from, e.g. Gflop/s by
app x (executor, kernel_backend)::

    pivot(records, rows=("app",), cols=("executor", "kernel_backend"),
          value="gflops", agg="max")

Aggregations are named, not callables, so the CLI can expose them
verbatim: ``min``/``max``/``mean``/``sum``/``count``/``first``/``last``
plus ``best`` (min for seconds-like values, max for rate-like values —
resolved from the value field's name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from .record import RunRecord

#: Fields a query/group/pivot axis may name.
AXIS_FIELDS = (
    "app", "bench", "variant", "machine", "nprocs", "executor",
    "kernel_backend", "seed", "steps", "repeats", "source", "pr",
    "host", "cpu_count", "version",
)

#: Numeric fields a pivot may aggregate.
VALUE_FIELDS = (
    "wall_s", "wall_per_step", "gflops", "compute_s", "comm_s",
    "sync_s", "recovery_s", "nbytes", "messages",
)

#: Rate-like fields where "best" means biggest.
_HIGHER_IS_BETTER = {"gflops", "messages", "nbytes"}

_AGGS: dict[str, Callable[[list[float]], float]] = {
    "min": min,
    "max": max,
    "mean": lambda xs: sum(xs) / len(xs),
    "sum": sum,
    "count": len,
    "first": lambda xs: xs[0],
    "last": lambda xs: xs[-1],
}


def _axis_value(rec: RunRecord, name: str) -> Any:
    if name not in AXIS_FIELDS:
        raise ValueError(
            f"unknown axis field {name!r}; choices: " + ", ".join(AXIS_FIELDS)
        )
    return getattr(rec, name)


def _metric_value(rec: RunRecord, name: str) -> float | None:
    if name not in VALUE_FIELDS:
        raise ValueError(
            f"unknown value field {name!r}; choices: "
            + ", ".join(VALUE_FIELDS)
        )
    value = getattr(rec, name)
    return None if value is None else float(value)


def resolve_agg(agg: str, value: str) -> Callable[[list[float]], float]:
    """The aggregation function for ``agg`` over value field ``value``."""
    if agg == "best":
        return max if value in _HIGHER_IS_BETTER else min
    try:
        return _AGGS[agg]
    except KeyError:
        raise ValueError(
            f"unknown aggregation {agg!r}; choices: best, "
            + ", ".join(_AGGS)
        ) from None


def filter_records(
    records: Iterable[RunRecord], **where: Any
) -> list[RunRecord]:
    """Equality filtering mirroring :meth:`PerfDB.query` semantics."""
    out = list(records)
    for name, wanted in where.items():
        if isinstance(wanted, (list, tuple, set, frozenset)):
            allowed = set(wanted)
            out = [r for r in out if _axis_value(r, name) in allowed]
        else:
            out = [r for r in out if _axis_value(r, name) == wanted]
    return out


def group_by(
    records: Iterable[RunRecord], keys: Sequence[str]
) -> dict[tuple, list[RunRecord]]:
    """Records bucketed by a tuple of axis fields, insertion-ordered."""
    groups: dict[tuple, list[RunRecord]] = {}
    for rec in records:
        k = tuple(_axis_value(rec, name) for name in keys)
        groups.setdefault(k, []).append(rec)
    return groups


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass
class Pivot:
    """A dense table: row keys x column keys -> aggregated value."""

    row_fields: tuple[str, ...]
    col_fields: tuple[str, ...]
    value: str
    agg: str
    cells: dict[tuple[tuple, tuple], float] = field(default_factory=dict)
    counts: dict[tuple[tuple, tuple], int] = field(default_factory=dict)

    @property
    def row_keys(self) -> list[tuple]:
        seen: list[tuple] = []
        for r, _ in self.cells:
            if r not in seen:
                seen.append(r)
        return seen

    @property
    def col_keys(self) -> list[tuple]:
        seen: list[tuple] = []
        for _, c in self.cells:
            if c not in seen:
                seen.append(c)
        return seen

    def get(self, row: tuple, col: tuple) -> float | None:
        return self.cells.get((row, col))

    def to_dict(self) -> dict[str, Any]:
        return {
            "rows": list(self.row_fields),
            "cols": list(self.col_fields),
            "value": self.value,
            "agg": self.agg,
            "cells": [
                {
                    "row": list(r),
                    "col": list(c),
                    "value": v,
                    "n": self.counts.get((r, c), 0),
                }
                for (r, c), v in self.cells.items()
            ],
        }

    def render(self) -> str:
        """ASCII table: one line per row key, one column per col key."""
        col_keys = self.col_keys
        headers = [" x ".join(_fmt(v) for v in c) or self.value
                   for c in col_keys]
        label_w = max(
            [len(" ".join(_fmt(v) for v in r)) for r in self.row_keys]
            + [len("/".join(self.row_fields)), 4]
        )
        widths = [max(len(h), 10) for h in headers]
        title = (
            f"{self.agg}({self.value}) by "
            f"{'/'.join(self.row_fields) or '(all)'} x "
            f"{'/'.join(self.col_fields) or '(all)'}"
        )
        lines = [title,
                 f"{'/'.join(self.row_fields) or 'all':<{label_w}}  "
                 + "  ".join(f"{h:>{w}}" for h, w in zip(headers, widths))]
        for r in self.row_keys:
            label = " ".join(_fmt(v) for v in r) or "(all)"
            cells = []
            for c, w in zip(col_keys, widths):
                v = self.cells.get((r, c))
                cells.append(f"{_fmt(v):>{w}}")
            lines.append(f"{label:<{label_w}}  " + "  ".join(cells))
        return "\n".join(lines)


def pivot(
    records: Iterable[RunRecord],
    rows: Sequence[str] = ("app",),
    cols: Sequence[str] = (),
    value: str = "gflops",
    agg: str = "best",
) -> Pivot:
    """Aggregate ``value`` over rows x cols of axis fields."""
    fn = resolve_agg(agg, value)
    buckets: dict[tuple[tuple, tuple], list[float]] = {}
    for rec in records:
        v = _metric_value(rec, value)
        if v is None:
            continue
        rk = tuple(_axis_value(rec, name) for name in rows)
        ck = tuple(_axis_value(rec, name) for name in cols)
        buckets.setdefault((rk, ck), []).append(v)
    out = Pivot(
        row_fields=tuple(rows),
        col_fields=tuple(cols),
        value=value,
        agg=agg,
    )
    for key, values in buckets.items():
        out.cells[key] = float(fn(values))
        out.counts[key] = len(values)
    return out
