"""Normalize every measurement source into :class:`RunRecord` rows.

Sources, in decreasing order of structure:

* **Uniform bench payloads** — anything ``benchmarks/common.py`` emits
  carries a ``records`` list of canonical record dicts; they are taken
  verbatim (provenance filled from the file when absent).
* **Legacy ``BENCH_PR1``–``PR7`` payloads** — the seven mutually
  incompatible schemas the first seven PRs accumulated.  Each has a
  dedicated adapter; :func:`detect_schema` sniffs which one applies.
* **Campaign manifests** — the JSONL journals of
  :mod:`repro.campaign.manifest`.  ``run-done`` events become records;
  configs come from the events themselves (new journals embed them) or
  from expanding the journaled spec and matching content keys.
* **Result caches** — :class:`repro.campaign.cache.ResultCache`
  directories; entries carry full configs and phase breakdowns.
* **Record JSONL** — ``repro-perfdb export`` output, re-imported by
  the store itself.

Every adapter is total: unrecognized sections are skipped, never
fatal, so a half-written journal or a future schema yields the records
it can instead of an exception.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from .record import RunRecord, pr_from_source

#: Legacy section name -> application key.
_SECTION_APPS = {
    "lbmhd_step_loop": "lbmhd",
    "gtc_pic_cycle": "gtc",
    "paratec_transpose": "paratec",
    "harness_overhead": "lbmhd",
    "lbmhd_harness": "lbmhd",
}

#: Legacy section name -> config-block key holding ranks/steps.
_SECTION_CONFIGS = {
    "lbmhd_step_loop": "lbmhd",
    "gtc_pic_cycle": "gtc",
    "paratec_transpose": "paratec",
    "harness_overhead": "harness_overhead",
}


def detect_schema(payload: Mapping[str, Any]) -> str:
    """Which BENCH payload shape this is (``records`` or ``pr1``..``pr10``)."""
    if isinstance(payload.get("records"), list):
        return "records"
    service = payload.get("service")
    if isinstance(service, dict) and "cold" in service:
        return "pr9"
    distrib = payload.get("distrib")
    if isinstance(distrib, dict) and "serial" in distrib:
        return "pr10"
    if "cells" in payload and "kernels" in payload:
        return "pr7"
    if "campaign" in payload and "cold" in payload:
        return "pr5"
    if "lbmhd_harness" in payload:
        return "pr4"
    step_loop = payload.get("lbmhd_step_loop")
    if isinstance(step_loop, dict) and "serial" in step_loop:
        return "pr6" if "processes" in step_loop else "pr3"
    if "harness_overhead" in payload:
        return "pr2"
    if any(k in payload for k in _SECTION_APPS):
        return "pr1"
    raise ValueError(
        "unrecognized benchmark payload: keys "
        + ", ".join(sorted(map(str, payload)))
    )


def _timing_record(
    cell: Mapping[str, Any],
    *,
    app: str,
    bench: str,
    variant: str,
    **fields: Any,
) -> RunRecord | None:
    """A record from a ``Timing.to_dict()``-shaped cell, or ``None``."""
    best = cell.get("best_s")
    if best is None:
        samples = cell.get("samples_s") or []
        best = min(samples) if samples else None
    if best is None:
        return None
    samples = cell.get("samples_s") or []
    extra = fields.pop("extra", {})
    return RunRecord(
        app=app,
        bench=bench,
        variant=variant,
        wall_s=float(best),
        repeats=fields.pop("repeats", len(samples) or None),
        extra=extra,
        **fields,
    )


def _section_shape(
    config: Mapping[str, Any], section: str
) -> tuple[int | None, int | None]:
    """(nprocs, steps-per-sample) for a legacy PR1/PR2 section."""
    block = config.get(_SECTION_CONFIGS.get(section, section), {})
    if not isinstance(block, dict):
        return None, None
    nprocs = block.get("ranks")
    steps = block.get("steps_per_sample", block.get("roundtrips_per_sample"))
    return nprocs, steps


def _records_pr1_pr2(payload: Mapping[str, Any]) -> list[RunRecord]:
    """PR1 (seed/fast sections) and PR2 (adds direct/harness overhead)."""
    config = payload.get("config", {})
    records: list[RunRecord] = []
    for section, app in _SECTION_APPS.items():
        cells = payload.get(section)
        if not isinstance(cells, dict):
            continue
        nprocs, steps = _section_shape(config, section)
        for variant, cell in cells.items():
            if not isinstance(cell, dict):
                continue
            rec = _timing_record(
                cell,
                app=app,
                bench=section,
                variant=variant,
                nprocs=nprocs,
                steps=steps,
                extra={
                    k: cells[k]
                    for k in ("speedup", "overhead", "limit")
                    if isinstance(cells.get(k), (int, float))
                },
            )
            if rec is not None:
                records.append(rec)
    return records


def _host_facts(payload: Mapping[str, Any]) -> dict[str, Any]:
    host = payload.get("host", {})
    if not isinstance(host, dict):
        return {}
    out: dict[str, Any] = {}
    if host.get("cpu_count") is not None:
        out["cpu_count"] = int(host["cpu_count"])
    if host.get("name"):
        out["host"] = str(host["name"])
    return out


def _records_pr3_pr6(payload: Mapping[str, Any]) -> list[RunRecord]:
    """PR3 (serial/threads) and PR6 (adds processes) executor cells."""
    config = payload.get("config", {})
    facts = _host_facts(payload)
    cells = payload.get("lbmhd_step_loop", {})
    records: list[RunRecord] = []
    for variant in ("serial", "threads", "processes"):
        cell = cells.get(variant)
        if not isinstance(cell, dict):
            continue
        extra: dict[str, Any] = {}
        support = cell.get("segment_support")
        if isinstance(support, dict):
            extra["segment_support"] = support
        rec = _timing_record(
            cell,
            app="lbmhd",
            bench="lbmhd_step_loop",
            variant=variant,
            executor=variant,
            nprocs=config.get("ranks"),
            steps=config.get("steps_per_sample"),
            cpu_count=cell.get("cpu_count", facts.get("cpu_count")),
            host=facts.get("host"),
            extra=extra,
        )
        if rec is not None:
            records.append(rec)
    return records


def _records_pr4(payload: Mapping[str, Any]) -> list[RunRecord]:
    """PR4 checkpoint-overhead cells (plain vs checkpointed)."""
    config = payload.get("config", {})
    facts = _host_facts(payload)
    cells = payload.get("lbmhd_harness", {})
    records: list[RunRecord] = []
    for variant in ("plain", "checkpointed"):
        cell = cells.get(variant)
        if not isinstance(cell, dict):
            continue
        extra: dict[str, Any] = {
            k: cells[k]
            for k in ("overhead", "checkpoint_bytes", "checkpoints_per_run")
            if isinstance(cells.get(k), (int, float))
        }
        if variant == "checkpointed":
            extra["checkpoint_every"] = config.get("checkpoint_every")
        rec = _timing_record(
            cell,
            app="lbmhd",
            bench="lbmhd_harness",
            variant=variant,
            nprocs=config.get("ranks"),
            steps=config.get("steps"),
            extra=extra,
            **facts,
        )
        if rec is not None:
            records.append(rec)
    return records


def _records_pr5(payload: Mapping[str, Any]) -> list[RunRecord]:
    """PR5 whole-campaign timings (cold serial/processes, warm rerun)."""
    facts = _host_facts(payload)
    campaign = payload.get("campaign", {})
    name = campaign.get("name", "campaign")
    configs = payload.get("configs")
    records: list[RunRecord] = []
    cold = payload.get("cold", {})
    for variant, field in (
        ("serial", "serial_wall_s"),
        ("processes", "processes_wall_s"),
    ):
        wall = cold.get(field)
        if not isinstance(wall, (int, float)):
            continue
        records.append(
            RunRecord(
                app="campaign",
                bench=f"campaign_cold:{name}",
                variant=variant,
                executor=variant,
                wall_s=float(wall),
                steps=configs,
                extra={"speedup": cold.get("speedup")},
                **facts,
            )
        )
    warm = payload.get("warm", {})
    if isinstance(warm.get("wall_s"), (int, float)):
        records.append(
            RunRecord(
                app="campaign",
                bench=f"campaign_warm:{name}",
                variant="warm",
                wall_s=float(warm["wall_s"]),
                steps=configs,
                extra={
                    "hits": warm.get("hits"),
                    "misses": warm.get("misses"),
                    "fraction_of_cold": warm.get("fraction_of_cold"),
                },
                **facts,
            )
        )
    return records


def _records_pr7(payload: Mapping[str, Any]) -> list[RunRecord]:
    """PR7 backend shootout: app cells plus micro-kernel timings."""
    spec = payload.get("spec", {})
    steps = spec.get("steps") if isinstance(spec, dict) else None
    records: list[RunRecord] = []
    for cell in payload.get("cells", []):
        if not isinstance(cell, dict) or not cell.get("ok", False):
            continue
        wall = cell.get("wall_s")
        if not isinstance(wall, (int, float)):
            continue
        backend = str(cell.get("backend", "numpy"))
        records.append(
            RunRecord(
                app=str(cell.get("app", "")),
                bench="backend_shootout",
                variant=backend,
                kernel_backend=backend,
                wall_s=float(wall),
                gflops=cell.get("gflops"),
                steps=steps,
                extra={
                    k: cell[k]
                    for k in (
                        "backend_available",
                        "backend_reason",
                        "speedup_vs_numpy",
                    )
                    if k in cell
                },
            )
        )
    for kernel, rows in payload.get("kernels", {}).items():
        if not isinstance(rows, dict):
            continue
        app = str(kernel).split("_", 1)[0]
        for backend, cell in rows.items():
            if not isinstance(cell, dict):
                continue
            rec = _timing_record(
                cell,
                app=app,
                bench=f"kernel:{kernel}",
                variant=str(backend),
                kernel_backend=str(backend),
                extra={
                    k: cell[k]
                    for k in ("backend_available", "speedup_vs_numpy")
                    if k in cell
                },
            )
            if rec is not None:
                records.append(rec)
    return records


def _records_pr9(payload: Mapping[str, Any]) -> list[RunRecord]:
    """PR9 service cells: cold/warm predict latency, coalesced vs
    serial fan-in of identical concurrent clients."""
    config = payload.get("config", {})
    facts = _host_facts(payload)
    svc = payload.get("service", {})
    app = str(config.get("app", "lbmhd"))
    records: list[RunRecord] = []
    for variant in ("cold", "warm"):
        cell = svc.get(variant)
        if not isinstance(cell, dict):
            continue
        extra: dict[str, Any] = {}
        if variant == "warm" and isinstance(
            svc.get("warm_fraction_of_cold"), (int, float)
        ):
            extra["fraction_of_cold"] = svc["warm_fraction_of_cold"]
        rec = _timing_record(
            cell,
            app=app,
            bench="service_predict",
            variant=variant,
            nprocs=config.get("nprocs"),
            steps=config.get("steps"),
            extra=extra,
            **facts,
        )
        if rec is not None:
            records.append(rec)
    for variant in ("coalesced", "serial"):
        cell = svc.get(variant)
        if not isinstance(cell, dict):
            continue
        wall = cell.get("wall_s")
        if not isinstance(wall, (int, float)):
            continue
        extra = {
            k: cell[k]
            for k in ("clients", "computations", "coalesced_total")
            if isinstance(cell.get(k), (int, float))
        }
        if variant == "coalesced" and isinstance(
            svc.get("coalesce_speedup"), (int, float)
        ):
            extra["speedup_vs_serial"] = svc["coalesce_speedup"]
        records.append(
            RunRecord(
                app=app,
                bench="service_fanin",
                variant=variant,
                nprocs=config.get("nprocs"),
                steps=config.get("steps"),
                wall_s=float(wall),
                extra=extra,
                **facts,
            )
        )
    return records


def _records_pr10(payload: Mapping[str, Any]) -> list[RunRecord]:
    """PR10 distrib cells: the same campaign swept serially and via a
    coordinator with two socket workers."""
    config = payload.get("config", {})
    facts = _host_facts(payload)
    distrib = payload.get("distrib", {})
    app = str(config.get("app", "campaign"))
    records: list[RunRecord] = []
    for variant in ("serial", "workers2"):
        cell = distrib.get(variant)
        if not isinstance(cell, dict):
            continue
        wall = cell.get("wall_s")
        if not isinstance(wall, (int, float)):
            continue
        extra = {
            k: cell[k]
            for k in ("workers", "cells", "completed", "dispatched",
                      "retried")
            if isinstance(cell.get(k), (int, float))
        }
        if variant == "workers2" and isinstance(
            distrib.get("speedup"), (int, float)
        ):
            extra["speedup_vs_serial"] = distrib["speedup"]
        records.append(
            RunRecord(
                app=app,
                bench="distrib_campaign",
                variant=variant,
                nprocs=config.get("nprocs"),
                steps=config.get("steps"),
                wall_s=float(wall),
                extra=extra,
                **facts,
            )
        )
    return records


_ADAPTERS = {
    "pr1": _records_pr1_pr2,
    "pr2": _records_pr1_pr2,
    "pr3": _records_pr3_pr6,
    "pr4": _records_pr4,
    "pr5": _records_pr5,
    "pr6": _records_pr3_pr6,
    "pr7": _records_pr7,
    "pr9": _records_pr9,
    "pr10": _records_pr10,
}


def records_from_bench(
    payload: Mapping[str, Any],
    *,
    source: str = "",
    pr: int | None = None,
    host: str | None = None,
    cpu_count: int | None = None,
    version: str | None = None,
) -> list[RunRecord]:
    """Normalize one BENCH payload (any schema era) into records.

    Provenance keywords fill fields the payload itself does not carry
    (legacy files never recorded a hostname; fresh emissions do).
    """
    schema = detect_schema(payload)
    if schema == "records":
        records = [RunRecord.from_dict(d) for d in payload["records"]]
    else:
        records = _ADAPTERS[schema](payload)
    if pr is None:
        pr = pr_from_source(source)
    return [
        rec.with_provenance(
            source=source or None,
            pr=pr,
            host=host,
            cpu_count=cpu_count,
            version=version,
        )
        for rec in records
    ]


# -- campaign sources -----------------------------------------------------


def _phase_totals(result: Mapping[str, Any]) -> dict[str, float | None]:
    """Whole-run per-rank-mean phase seconds from a worker result dict."""
    phases = result.get("phases")
    if not isinstance(phases, list) or not phases:
        return {}
    steps = result.get("steps") or 1
    totals = {"compute": 0.0, "comm": 0.0, "sync": 0.0,
              "recovery": 0.0, "nbytes": 0.0, "messages": 0.0}
    for p in phases:
        if not isinstance(p, dict):
            continue
        totals["compute"] += float(p.get("compute_s_mean", 0.0))
        totals["comm"] += float(p.get("comm_s_mean", 0.0))
        totals["sync"] += float(p.get("wait_s_mean", 0.0))
        totals["recovery"] += float(p.get("recovery_s_mean", 0.0))
        totals["nbytes"] += float(p.get("nbytes", 0.0))
        totals["messages"] += float(p.get("messages", 0.0))
    s = max(int(steps), 1)
    return {
        "compute_s": totals["compute"] * s,
        "comm_s": totals["comm"] * s,
        "sync_s": totals["sync"] * s,
        "recovery_s": totals["recovery"] * s,
        "nbytes": totals["nbytes"] * s,
        "messages": totals["messages"] * s,
    }


def _record_from_config_result(
    config: Mapping[str, Any],
    *,
    bench: str,
    wall_s: float,
    gflops: float | None,
    result: Mapping[str, Any] | None = None,
    source: str = "",
    key: str | None = None,
    host: str | None = None,
    cpu_count: int | None = None,
    version: str | None = None,
    extra: Mapping[str, Any] | None = None,
) -> RunRecord:
    """One record from a RunConfig dict plus its measured outcome."""
    phase = _phase_totals(result or {})
    res = result or {}
    return RunRecord(
        extra=dict(extra) if extra else (),
        app=str(config.get("app", "")),
        bench=bench,
        variant=str(res.get("label") or config.get("label") or ""),
        machine=config.get("machine"),
        nprocs=config.get("nprocs") or res.get("nprocs"),
        executor=str(config.get("executor", "serial")),
        kernel_backend=str(config.get("kernel_backend", "numpy")),
        seed=config.get("seed"),
        steps=config.get("steps"),
        repeats=config.get("repeats"),
        wall_s=float(wall_s),
        gflops=gflops,
        source=source,
        pr=pr_from_source(source),
        key=key,
        host=res.get("host", host),
        cpu_count=res.get("cpu_count", cpu_count),
        version=res.get("version", version),
        **phase,
    )


def records_from_manifest(
    path: "str | Path", *, source: str | None = None
) -> list[RunRecord]:
    """Records from a campaign JSONL journal (torn lines tolerated).

    ``run-done`` events become records.  Configs are taken from the
    events that carry them (journals written by this version embed
    ``config`` in ``run-start``/``run-done``); for older journals the
    spec in ``campaign-start`` is expanded and matched by content key.
    """
    from ..campaign.manifest import read_events
    from ..campaign.spec import CampaignSpec

    p = Path(path)
    if source is None:
        source = f"manifest:{p.name}"
    name = "campaign"
    host = cpu_count = version = None
    configs_by_key: dict[str, dict[str, Any]] = {}
    records: list[RunRecord] = []
    for event in read_events(p):
        kind = event.get("event")
        if kind == "campaign-start":
            name = str(event.get("name") or "campaign")
            hostinfo = event.get("host") or {}
            host = hostinfo.get("name")
            cpu_count = hostinfo.get("cpu_count")
            version = event.get("version")
            spec_dict = event.get("spec")
            if isinstance(spec_dict, dict):
                try:
                    spec = CampaignSpec.from_dict(spec_dict)
                    for cfg in spec.expand():
                        configs_by_key.setdefault(
                            cfg.key(version) if version else cfg.key(),
                            cfg.to_dict(),
                        )
                except (TypeError, ValueError):
                    pass
        elif kind in ("run-start", "run-done"):
            cfg = event.get("config")
            if isinstance(cfg, dict):
                configs_by_key[str(event.get("key"))] = cfg
        if kind != "run-done":
            continue
        key = str(event.get("key"))
        config = configs_by_key.get(key)
        if config is None:
            continue  # unmatchable legacy event: nothing to normalize
        config = dict(config)
        config.setdefault("label", event.get("label"))
        # per-event provenance outranks the campaign-start block: a
        # distrib campaign computes different cells on different
        # hosts, and run-done events journal where each one ran.
        # (campaign-start carries host as a {"name", "cpu_count"}
        # dict; run-done carries a plain hostname string.)
        ev_host = event.get("host")
        worker = event.get("worker")
        records.append(
            _record_from_config_result(
                config,
                bench=f"campaign:{name}",
                wall_s=float(event.get("wall_s", 0.0)),
                gflops=event.get("gflops"),
                source=source,
                key=key,
                host=ev_host if isinstance(ev_host, str) else host,
                cpu_count=event.get("cpu_count", cpu_count),
                version=event.get("version") or version,
                extra={"worker": str(worker)} if worker else None,
            )
        )
    return records


def records_from_cache(
    root: "str | Path", *, source: str = "cache"
) -> list[RunRecord]:
    """Records from every readable ResultCache entry under ``root``."""
    from ..campaign.cache import ResultCache

    records: list[RunRecord] = []
    for entry in ResultCache(root).entries():
        config = entry.get("config")
        result = entry.get("result")
        if not isinstance(config, dict) or not isinstance(result, dict):
            continue
        records.append(
            _record_from_config_result(
                config,
                bench="cache",
                wall_s=float(result.get("wall_s", 0.0)),
                gflops=result.get("gflops"),
                result=result,
                source=source,
                key=entry.get("key"),
                version=entry.get("version"),
            )
        )
    return records


def records_from_report(
    report: Any, *, source: str = "", bench: str | None = None
) -> list[RunRecord]:
    """Records from a live :class:`~repro.campaign.report.CampaignReport`."""
    import os
    import socket

    from .. import __version__

    host = socket.gethostname()
    cpu_count = os.cpu_count() or 1
    if bench is None:
        bench = f"campaign:{report.spec.name}"
    records: list[RunRecord] = []
    for row in report.rows:
        if not row.ok:
            continue
        records.append(
            _record_from_config_result(
                row.config.to_dict(),
                bench=bench,
                wall_s=row.wall_s,
                gflops=row.gflops,
                result=row.result,
                source=source or f"report:{report.spec.name}",
                key=row.key,
                host=host,
                cpu_count=cpu_count,
                version=__version__,
            )
        )
    return records


# -- the one-call entry point ---------------------------------------------


def ingest_path(path: "str | Path") -> list[RunRecord]:
    """Records from *any* supported on-disk source.

    Dispatch: a directory is a ResultCache; ``*.jsonl`` is a campaign
    manifest (falling back to record-JSONL lines if no events match);
    anything else is parsed as a BENCH JSON payload.
    """
    p = Path(path)
    if p.is_dir():
        return records_from_cache(p, source=f"cache:{p.name}")
    if p.suffix == ".jsonl":
        records = records_from_manifest(p)
        if records:
            return records
        # not a manifest (or an empty one): try record-JSONL lines
        out: list[RunRecord] = []
        with p.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(obj, dict) and "event" not in obj:
                    try:
                        out.append(RunRecord.from_dict(obj))
                    except (TypeError, ValueError):
                        continue
        return out
    payload = json.loads(p.read_text())
    return records_from_bench(payload, source=p.name)


def ingest_paths(
    db: Any, paths: Iterable["str | Path"]
) -> dict[str, int]:
    """Ingest every path into ``db``; returns ``{path: new-row-count}``."""
    counts: dict[str, int] = {}
    for path in paths:
        counts[str(path)] = db.add(ingest_path(path))
    return counts
