"""``repro-perfdb`` — ingest, query, and regression-check measurements.

Usage::

    repro-perfdb ingest perf.db BENCH_PR*.json .repro-cache/x.manifest.jsonl
    repro-perfdb query perf.db --rows app --cols executor,kernel_backend
    repro-perfdb query perf.db --where app=lbmhd --value wall_s --agg min
    repro-perfdb check perf.db                      # exit 1 on regression
    repro-perfdb check perf.db --inject-slowdown 2  # must exit 1 (teeth)
    repro-perfdb report perf.db --kind trend|shootout|phases|roofline
    repro-perfdb export perf.db records.jsonl
    python -m repro.perfdb.cli ...

Exit codes: 0 ok, 1 regressions found (``check``), 2 bad usage/input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .ingest import ingest_path
from .query import AXIS_FIELDS, VALUE_FIELDS, pivot
from .reports import (
    render_phase_breakdown,
    render_roofline,
    render_shootout,
    render_trend,
)
from .store import PerfDB
from .trend import TrendPolicy, detect_regressions, inject_slowdown


def _open_db(path: str) -> PerfDB:
    return PerfDB(path)


def _parse_where(pairs: list[str]) -> dict:
    out: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(
                f"bad --where filter {pair!r} (expected field=value)"
            )
        field, raw = pair.split("=", 1)
        field = field.strip()
        if field not in AXIS_FIELDS:
            raise ValueError(
                f"unknown filter field {field!r}; choices: "
                + ", ".join(AXIS_FIELDS)
            )
        values = []
        for token in raw.split(","):
            token = token.strip()
            if token in ("", "none", "None", "null"):
                values.append(None)
            else:
                try:
                    values.append(int(token))
                except ValueError:
                    values.append(token)
        out[field] = values[0] if len(values) == 1 else values
    return out


def _cmd_ingest(args) -> int:
    db = _open_db(args.db)
    total_new = 0
    bad = 0
    for raw in args.paths:
        path = Path(raw)
        try:
            records = ingest_path(path)
        except FileNotFoundError:
            print(f"repro-perfdb: no such source: {path}", file=sys.stderr)
            bad += 1
            continue
        except (json.JSONDecodeError, ValueError) as exc:
            print(f"repro-perfdb: bad source {path}: {exc}", file=sys.stderr)
            bad += 1
            continue
        new = db.add(records)
        total_new += new
        if not args.quiet:
            dupes = len(records) - new
            dupe_txt = f" ({dupes} already present)" if dupes else ""
            print(f"{path}: {new} new record(s){dupe_txt}")
    if not args.quiet:
        print(
            f"repro-perfdb: {len(db)} record(s) in {args.db} "
            f"({total_new} new, {len(db.sources())} source(s))"
        )
    return 2 if bad else 0


def _cmd_query(args) -> int:
    db = _open_db(args.db)
    try:
        where = _parse_where(args.where or [])
        records = db.all()
        if where:
            from .query import filter_records

            records = filter_records(records, **where)
        rows = [f for f in (args.rows or "app").split(",") if f]
        cols = [f for f in (args.cols or "").split(",") if f]
        table = pivot(
            records, rows=rows, cols=cols, value=args.value, agg=args.agg
        )
    except ValueError as exc:
        print(f"repro-perfdb: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(table.to_dict(), indent=2, sort_keys=True))
    else:
        print(table.render())
        print(f"({len(records)} record(s) matched)")
    return 0


def _cmd_check(args) -> int:
    db = _open_db(args.db)
    policy = TrendPolicy(
        same_host_ratio=args.same_host_ratio,
        cross_host_ratio=args.cross_host_ratio,
        min_wall_s=args.min_wall_s,
    )
    records = db.all()
    if args.inject_slowdown is not None:
        records = inject_slowdown(records, args.inject_slowdown)
    findings = detect_regressions(records, policy)
    if args.json:
        print(
            json.dumps(
                {
                    "records": len(records),
                    "regressions": [f.to_dict() for f in findings],
                    "policy": {
                        "same_host_ratio": policy.same_host_ratio,
                        "cross_host_ratio": policy.cross_host_ratio,
                        "min_wall_s": policy.min_wall_s,
                    },
                },
                indent=2,
                sort_keys=True,
            )
        )
    elif findings:
        print(
            f"repro-perfdb: {len(findings)} regression(s) across "
            f"{len(records)} record(s):"
        )
        for f in findings:
            print(f"  {f.describe()}")
    elif not args.quiet:
        print(
            f"repro-perfdb: no regressions across {len(records)} "
            f"record(s) "
            f"(same-host > {policy.same_host_ratio}x, "
            f"cross-host > {policy.cross_host_ratio}x)"
        )
    return 1 if findings else 0


def _cmd_report(args) -> int:
    db = _open_db(args.db)
    records = db.all()
    renderers = {
        "trend": render_trend,
        "shootout": render_shootout,
        "phases": render_phase_breakdown,
        "roofline": render_roofline,
    }
    kinds = (
        list(renderers) if args.kind == "all" else [args.kind]
    )
    blocks = [
        f"== {k} ==\n{renderers[k](records)}" for k in kinds
    ]
    print("\n\n".join(blocks))
    return 0


def _cmd_export(args) -> int:
    db = _open_db(args.db)
    n = db.export_jsonl(args.out)
    print(f"repro-perfdb: exported {n} record(s) to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-perfdb",
        description=(
            "Queryable performance database over BENCH_*.json benchmarks, "
            "campaign manifests, and result caches — with cross-PR "
            "regression detection."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ingest = sub.add_parser(
        "ingest", help="normalize sources into the database"
    )
    p_ingest.add_argument("db", help="SQLite database file (created if absent)")
    p_ingest.add_argument(
        "paths", nargs="+",
        help=(
            "BENCH_*.json payloads, campaign *.manifest.jsonl journals, "
            "record JSONL exports, or ResultCache directories"
        ),
    )
    p_ingest.add_argument("--quiet", action="store_true")
    p_ingest.set_defaults(fn=_cmd_ingest)

    p_query = sub.add_parser(
        "query", help="pivot an aggregated value over axis fields"
    )
    p_query.add_argument("db")
    p_query.add_argument(
        "--where", action="append", metavar="FIELD=VALUE",
        help="equality filter; repeatable; comma = IN-list",
    )
    p_query.add_argument(
        "--rows", default="app", metavar="FIELDS",
        help="comma-separated row axes (default: app)",
    )
    p_query.add_argument(
        "--cols", default="executor,kernel_backend", metavar="FIELDS",
        help="comma-separated column axes "
             "(default: executor,kernel_backend)",
    )
    p_query.add_argument(
        "--value", default="gflops", choices=VALUE_FIELDS,
        help="metric to aggregate (default: gflops)",
    )
    p_query.add_argument(
        "--agg", default="best",
        help="best/min/max/mean/sum/count/first/last (default: best)",
    )
    p_query.add_argument("--json", action="store_true")
    p_query.set_defaults(fn=_cmd_query)

    p_check = sub.add_parser(
        "check",
        help="regression-check the trajectory (exit 1 on findings)",
    )
    p_check.add_argument("db")
    p_check.add_argument(
        "--inject-slowdown", type=float, metavar="FACTOR",
        help=(
            "append a synthetic same-host FACTORx-slower copy of each "
            "series' latest point — the check must then fail"
        ),
    )
    p_check.add_argument(
        "--same-host-ratio", type=float,
        default=TrendPolicy.same_host_ratio, metavar="R",
    )
    p_check.add_argument(
        "--cross-host-ratio", type=float,
        default=TrendPolicy.cross_host_ratio, metavar="R",
    )
    p_check.add_argument(
        "--min-wall-s", type=float,
        default=TrendPolicy.min_wall_s, metavar="S",
    )
    p_check.add_argument("--json", action="store_true")
    p_check.add_argument("--quiet", action="store_true")
    p_check.set_defaults(fn=_cmd_check)

    p_report = sub.add_parser(
        "report", help="render trend/shootout/phases/roofline views"
    )
    p_report.add_argument("db")
    p_report.add_argument(
        "--kind", default="all",
        choices=("all", "trend", "shootout", "phases", "roofline"),
    )
    p_report.set_defaults(fn=_cmd_report)

    p_export = sub.add_parser(
        "export", help="dump every record as canonical JSONL"
    )
    p_export.add_argument("db")
    p_export.add_argument("out", help="output .jsonl path")
    p_export.set_defaults(fn=_cmd_export)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ValueError as exc:
        print(f"repro-perfdb: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro-perfdb report ... | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
