"""The canonical measurement record every source normalizes into.

One :class:`RunRecord` is one timed run of one configuration: what ran
(app, bench series, variant), where it ran (machine model, host,
cpu_count), how it ran (P, executor, kernel backend, seed, steps,
repeats), what was measured (wall seconds, Gflop/s, per-phase
compute/comm/sync/recovery seconds, bytes, messages), and where the
number came from (source file or manifest, PR tag, package version,
content key).

The record is frozen and JSON-plain by construction.  :meth:`uid` is a
SHA-256 over the canonical JSON form, so a record is its own identity:
ingesting the same file twice dedupes exactly, and two records that
differ in any field are distinct rows.

Series identity (:meth:`series_key`) is the cross-PR pairing axis used
by :mod:`repro.perfdb.trend`: the same (bench, variant, app, machine,
P, executor, kernel_backend, seed) cell measured by two PRs is two
points on one trajectory.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

#: Bumped when the RunRecord field set changes incompatibly.
SCHEMA_VERSION = 1

_PR_RE = re.compile(r"PR(\d+)", re.IGNORECASE)


def pr_from_source(source: str) -> int | None:
    """Parse the PR ordinal out of a source tag like ``BENCH_PR5.json``."""
    m = _PR_RE.search(source or "")
    return int(m.group(1)) if m else None


def _freeze_extra(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze_extra(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_extra(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"RunRecord extras must be JSON-plain, got {type(value).__name__}"
    )


def _thaw_extra(value: Any) -> Any:
    if isinstance(value, tuple):
        if all(
            isinstance(v, tuple) and len(v) == 2 and isinstance(v[0], str)
            for v in value
        ):
            return {k: _thaw_extra(v) for k, v in value}
        return [_thaw_extra(v) for v in value]
    return value


@dataclass(frozen=True)
class RunRecord:
    """One measurement, fully described.  All fields JSON-plain."""

    # -- what ran --------------------------------------------------------
    #: Application key (``lbmhd``/``gtc``/``paratec``/``fvcam``) or a
    #: synthetic subject like ``campaign`` for whole-sweep timings.
    app: str
    #: Series name: the tracked loop or sweep this point belongs to
    #: (``lbmhd_step_loop``, ``backend_shootout``, ``campaign:<name>``).
    bench: str
    #: Cell within the series (``seed``/``fast``/``serial``/``threads``/
    #: ``processes``/``plain``/``checkpointed``/a backend name/a label).
    variant: str = ""

    # -- how it ran ------------------------------------------------------
    machine: str | None = None
    nprocs: int | None = None
    executor: str = "serial"
    kernel_backend: str = "numpy"
    seed: int | None = None
    steps: int | None = None
    repeats: int | None = None

    # -- what was measured ----------------------------------------------
    wall_s: float = 0.0
    gflops: float | None = None
    compute_s: float | None = None
    comm_s: float | None = None
    sync_s: float | None = None
    recovery_s: float | None = None
    nbytes: float | None = None
    messages: float | None = None

    # -- provenance ------------------------------------------------------
    #: Where the number came from: a ``BENCH_*.json`` filename, a
    #: ``manifest:<name>`` tag, ``cache``, or ``synthetic-*``.
    source: str = ""
    #: PR ordinal for cross-PR ordering (parsed from the source tag).
    pr: int | None = None
    host: str | None = None
    cpu_count: int | None = None
    #: Package version that produced the measurement, when known.
    version: str | None = None
    #: Content key (``RunConfig.key``) for campaign-born records.
    key: str | None = None
    #: Anything schema-less worth keeping (frozen mapping).
    extra: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.wall_s < 0:
            raise ValueError("wall_s must be >= 0")
        object.__setattr__(self, "extra", _freeze_extra(self.extra_dict()))

    def extra_dict(self) -> dict[str, Any]:
        thawed = _thaw_extra(self.extra) if self.extra else {}
        return thawed if isinstance(thawed, dict) else {}

    # -- identities ------------------------------------------------------

    def series_key(self) -> tuple:
        """The cross-PR trajectory this record is one point on."""
        return (
            self.bench,
            self.variant,
            self.app,
            self.machine,
            self.nprocs,
            self.executor,
            self.kernel_backend,
            self.seed,
        )

    @property
    def series_label(self) -> str:
        bits = [self.bench]
        if self.variant:
            bits.append(f".{self.variant}")
        tail = []
        if self.app and self.app != self.bench:
            tail.append(self.app)
        if self.machine:
            tail.append(f"@{self.machine}")
        if self.nprocs is not None:
            tail.append(f"P={self.nprocs}")
        if self.executor != "serial":
            tail.append(self.executor)
        if self.kernel_backend != "numpy":
            tail.append(f"k:{self.kernel_backend}")
        if self.seed is not None:
            tail.append(f"seed={self.seed}")
        if tail:
            bits.append(" [" + " ".join(tail) + "]")
        return "".join(bits)

    def uid(self) -> str:
        """SHA-256 of the canonical JSON form — the dedupe identity."""
        canon = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canon.encode()).hexdigest()

    #: Seconds of wall-clock per unit of work, when the unit is known —
    #: the quantity regression detection compares so that a series whose
    #: step count changed between PRs still pairs fairly.
    @property
    def wall_per_step(self) -> float:
        if self.steps and self.steps > 0:
            return self.wall_s / self.steps
        return self.wall_s

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "bench": self.bench,
            "variant": self.variant,
            "machine": self.machine,
            "nprocs": self.nprocs,
            "executor": self.executor,
            "kernel_backend": self.kernel_backend,
            "seed": self.seed,
            "steps": self.steps,
            "repeats": self.repeats,
            "wall_s": self.wall_s,
            "gflops": self.gflops,
            "compute_s": self.compute_s,
            "comm_s": self.comm_s,
            "sync_s": self.sync_s,
            "recovery_s": self.recovery_s,
            "nbytes": self.nbytes,
            "messages": self.messages,
            "source": self.source,
            "pr": self.pr,
            "host": self.host,
            "cpu_count": self.cpu_count,
            "version": self.version,
            "key": self.key,
            "extra": self.extra_dict(),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunRecord":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(
                f"unknown RunRecord field(s): {', '.join(unknown)}"
            )
        kwargs = dict(d)
        kwargs["extra"] = _freeze_extra(kwargs.get("extra") or {})
        return cls(**kwargs)

    def with_provenance(
        self,
        *,
        source: str | None = None,
        pr: int | None = None,
        host: str | None = None,
        cpu_count: int | None = None,
        version: str | None = None,
    ) -> "RunRecord":
        """Fill provenance fields that are still unset (never overwrite)."""
        updates: dict[str, Any] = {}
        if source is not None and not self.source:
            updates["source"] = source
        if pr is not None and self.pr is None:
            updates["pr"] = pr
        if host is not None and self.host is None:
            updates["host"] = host
        if cpu_count is not None and self.cpu_count is None:
            updates["cpu_count"] = cpu_count
        if version is not None and self.version is None:
            updates["version"] = version
        return replace(self, **updates) if updates else self
