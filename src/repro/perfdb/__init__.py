"""repro.perfdb — the queryable performance database.

The paper's core contribution is *measurement*: Gflop/s, % of peak,
and phase breakdowns compared across applications, platforms, and
concurrencies.  This package does the same for the reproduction's own
trajectory: one canonical :class:`RunRecord` schema for every
measurement the repository produces (tracked ``BENCH_*.json``
benchmarks, campaign manifests, result-cache entries), an SQLite-backed
:class:`PerfDB` store with JSONL import/export, a filter/group/pivot
query API, paired-ratio regression detection with host-aware
thresholds, and rendered roofline / phase-breakdown / shootout reports
reusing :mod:`repro.perfmodel`.

The ``repro-perfdb`` CLI (``ingest`` / ``query`` / ``check`` /
``report`` / ``export``) is the product surface; see
``docs/perfdb.md``.
"""

from .ingest import (
    ingest_path,
    records_from_bench,
    records_from_cache,
    records_from_manifest,
    records_from_report,
)
from .query import Pivot, filter_records, group_by, pivot
from .record import RunRecord, SCHEMA_VERSION
from .reports import (
    render_phase_breakdown,
    render_roofline,
    render_shootout,
    render_trend,
)
from .store import PerfDB
from .trend import (
    Regression,
    TrendPolicy,
    detect_regressions,
    inject_slowdown,
    series_trends,
)

__all__ = [
    "PerfDB",
    "Pivot",
    "Regression",
    "RunRecord",
    "SCHEMA_VERSION",
    "TrendPolicy",
    "detect_regressions",
    "filter_records",
    "group_by",
    "ingest_path",
    "inject_slowdown",
    "pivot",
    "records_from_bench",
    "records_from_cache",
    "records_from_manifest",
    "records_from_report",
    "render_phase_breakdown",
    "render_roofline",
    "render_shootout",
    "render_trend",
    "series_trends",
]
