"""SQLite-backed store of :class:`~repro.perfdb.record.RunRecord` rows.

One table, one row per record, addressed by :meth:`RunRecord.uid` — so
``add`` is idempotent and re-ingesting a file someone already ingested
is a no-op, not a duplicate trajectory.  The full canonical JSON is
kept alongside typed columns: the JSON is the round-trip truth, the
columns are what WHERE clauses and indexes use.

``seq`` (the SQLite rowid) preserves ingest order; together with the
``pr`` tag it defines the trajectory ordering
:mod:`repro.perfdb.trend` pairs records along.

The store also speaks JSONL: :meth:`export_jsonl` writes one record
per line, :meth:`import_jsonl` reads them back (torn trailing lines
tolerated, same as campaign manifests).
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Any, Iterable, Iterator

from .record import RunRecord, SCHEMA_VERSION

_COLUMNS = (
    "app", "bench", "variant", "machine", "nprocs", "executor",
    "kernel_backend", "seed", "steps", "repeats", "wall_s", "gflops",
    "source", "pr", "host", "cpu_count", "version", "key",
)

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS records (
    uid TEXT PRIMARY KEY,
    app TEXT NOT NULL,
    bench TEXT NOT NULL,
    variant TEXT NOT NULL DEFAULT '',
    machine TEXT,
    nprocs INTEGER,
    executor TEXT NOT NULL DEFAULT 'serial',
    kernel_backend TEXT NOT NULL DEFAULT 'numpy',
    seed INTEGER,
    steps INTEGER,
    repeats INTEGER,
    wall_s REAL NOT NULL,
    gflops REAL,
    source TEXT NOT NULL DEFAULT '',
    pr INTEGER,
    host TEXT,
    cpu_count INTEGER,
    version TEXT,
    key TEXT,
    json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_series
    ON records (bench, variant, app, pr);
CREATE INDEX IF NOT EXISTS idx_records_app ON records (app);
CREATE TABLE IF NOT EXISTS meta (k TEXT PRIMARY KEY, v TEXT NOT NULL);
INSERT OR IGNORE INTO meta (k, v) VALUES ('schema', '{SCHEMA_VERSION}');
"""


class PerfDB:
    """The performance database: a single SQLite file (or ``:memory:``)."""

    def __init__(self, path: "str | Path" = ":memory:") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        stored = self.schema_version
        if stored != SCHEMA_VERSION:
            raise ValueError(
                f"perfdb schema mismatch: {self.path} is v{stored}, "
                f"this package speaks v{SCHEMA_VERSION} — re-ingest into "
                f"a fresh database"
            )

    # -- lifecycle -------------------------------------------------------

    @property
    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT v FROM meta WHERE k = 'schema'"
        ).fetchone()
        return int(row["v"]) if row else SCHEMA_VERSION

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "PerfDB":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- writes ----------------------------------------------------------

    def add(self, records: "RunRecord | Iterable[RunRecord]") -> int:
        """Insert records, deduping on uid; returns how many were new."""
        if isinstance(records, RunRecord):
            records = [records]
        new = 0
        with self._conn:
            for rec in records:
                d = rec.to_dict()
                cur = self._conn.execute(
                    "INSERT OR IGNORE INTO records "
                    f"(uid, {', '.join(_COLUMNS)}, json) VALUES "
                    f"({', '.join('?' * (len(_COLUMNS) + 2))})",
                    (
                        rec.uid(),
                        *[d[c] for c in _COLUMNS],
                        json.dumps(d, sort_keys=True),
                    ),
                )
                new += cur.rowcount
        return new

    def clear(self) -> int:
        with self._conn:
            cur = self._conn.execute("DELETE FROM records")
        return cur.rowcount

    # -- reads -----------------------------------------------------------

    def __len__(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) AS n FROM records")
        return int(row.fetchone()["n"])

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.all())

    def all(self) -> list[RunRecord]:
        """Every record in trajectory order (PR tag, then ingest order)."""
        rows = self._conn.execute(
            "SELECT json FROM records "
            "ORDER BY (pr IS NULL), pr, rowid"
        ).fetchall()
        return [RunRecord.from_dict(json.loads(r["json"])) for r in rows]

    def query(self, **where: Any) -> list[RunRecord]:
        """Records matching column equality filters, trajectory-ordered.

        ``db.query(app="lbmhd", executor="serial")``; a ``None`` value
        matches SQL NULL; a list/tuple/set value is an ``IN`` filter.
        """
        clauses: list[str] = []
        params: list[Any] = []
        for col, value in where.items():
            if col not in _COLUMNS:
                raise ValueError(
                    f"unknown query column {col!r}; choices: "
                    + ", ".join(_COLUMNS)
                )
            if value is None:
                clauses.append(f"{col} IS NULL")
            elif isinstance(value, (list, tuple, set, frozenset)):
                items = list(value)
                clauses.append(
                    f"{col} IN ({', '.join('?' * len(items))})"
                )
                params.extend(items)
            else:
                clauses.append(f"{col} = ?")
                params.append(value)
        sql = "SELECT json FROM records"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY (pr IS NULL), pr, rowid"
        rows = self._conn.execute(sql, params).fetchall()
        return [RunRecord.from_dict(json.loads(r["json"])) for r in rows]

    def distinct(self, column: str) -> list[Any]:
        if column not in _COLUMNS:
            raise ValueError(f"unknown column {column!r}")
        rows = self._conn.execute(
            f"SELECT DISTINCT {column} AS v FROM records ORDER BY v"
        ).fetchall()
        return [r["v"] for r in rows]

    def sources(self) -> dict[str, int]:
        """Record count per source tag — the ingest ledger."""
        rows = self._conn.execute(
            "SELECT source, COUNT(*) AS n FROM records "
            "GROUP BY source ORDER BY source"
        ).fetchall()
        return {r["source"]: int(r["n"]) for r in rows}

    # -- JSONL interchange ----------------------------------------------

    def export_jsonl(self, path: "str | Path") -> int:
        """One canonical-JSON record per line; returns the line count."""
        records = self.all()
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        with p.open("w") as fh:
            for rec in records:
                fh.write(
                    json.dumps(rec.to_dict(), sort_keys=True) + "\n"
                )
        return len(records)

    def import_jsonl(self, path: "str | Path") -> int:
        """Read records written by :meth:`export_jsonl`; returns new rows."""
        records: list[RunRecord] = []
        with Path(path).open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(RunRecord.from_dict(json.loads(line)))
                except (json.JSONDecodeError, TypeError, ValueError):
                    continue  # torn trailing line or foreign JSONL
        return self.add(records)
