"""Interconnect substrate: topologies, message costs, collectives."""

from .collectives import CollectiveModel
from .model import PER_HOP_SECONDS, NetworkModel
from .protocols import (
    CommProtocol,
    best_protocol,
    latency_factor,
    supported_protocols,
)
from .topology import (
    FatTree,
    FullCrossbar,
    Hypercube4D,
    Topology,
    Torus2D,
    make_topology,
)

__all__ = [
    "CollectiveModel",
    "CommProtocol",
    "best_protocol",
    "FatTree",
    "FullCrossbar",
    "Hypercube4D",
    "latency_factor",
    "NetworkModel",
    "PER_HOP_SECONDS",
    "Topology",
    "Torus2D",
    "supported_protocols",
    "make_topology",
]
