"""Interconnect topologies of the evaluated platforms.

Table 1 lists a fat-tree for the three commodity clusters, a 4-D
hypercube for the X1/X1E (2-D torus beyond 512 MSPs), and single-stage
crossbars for the ES (custom IN) and SX-8 (IXS).  Each topology provides
hop counts between *nodes* and a bisection-capacity figure (in links)
that the collective models use to derate dense communication patterns.

Graphs are materialized with :mod:`networkx` on demand for analysis and
property tests; routine hop queries use closed forms.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import networkx as nx


class Topology(abc.ABC):
    """Abstract interconnect graph over ``num_nodes`` SMP nodes."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.num_nodes = num_nodes

    @abc.abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Router-to-router hops between two nodes (0 when src == dst)."""

    @abc.abstractmethod
    def bisection_links(self) -> float:
        """Links crossing a worst-case even bipartition of the nodes."""

    @abc.abstractmethod
    def build_graph(self) -> nx.Graph:
        """Materialize the node-level graph (for tests / analysis)."""

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise IndexError(
                f"node out of range: {src}, {dst} (have {self.num_nodes})"
            )

    def diameter(self) -> int:
        """Maximum hop count over all node pairs (closed form per class)."""
        return max(
            self.hops(0, d) for d in range(self.num_nodes)
        )

    def bisection_contention(self) -> float:
        """Derating factor (>= 1) for all-to-all style traffic.

        An exchange in which every node sends across the bisection needs
        ``num_nodes / 2`` link-equivalents; a topology providing fewer
        bisection links serializes the difference.
        """
        demand = self.num_nodes / 2.0
        capacity = self.bisection_links()
        return max(1.0, demand / capacity) if capacity > 0 else 1.0


class FullCrossbar(Topology):
    """Single-stage crossbar: every node one hop from every other.

    The ES interconnect — the paper notes its ~1500 miles of cable and
    the O(nodes^2) cabling cost this buys.
    """

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else 1

    def bisection_links(self) -> float:
        # Full bisection: each node's port reaches any partner directly.
        return self.num_nodes / 2.0

    def build_graph(self) -> nx.Graph:
        return nx.complete_graph(self.num_nodes)


class FatTree(Topology):
    """Folded-Clos / fat-tree (SP Switch2, Quadrics Elan4, InfiniBand).

    Modeled as a full-bisection tree with radix-``arity`` switches: a
    message climbs to the lowest common ancestor and back down.
    """

    def __init__(self, num_nodes: int, arity: int = 16) -> None:
        super().__init__(num_nodes)
        if arity < 2:
            raise ValueError("switch arity must be >= 2")
        self.arity = arity
        self.levels = max(1, math.ceil(math.log(max(num_nodes, 2), arity)))

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        # Find the tree level at which the two leaves diverge.
        level = 1
        a, b = src, dst
        while a // self.arity != b // self.arity:
            a //= self.arity
            b //= self.arity
            level += 1
        return 2 * level

    def bisection_links(self) -> float:
        # Constant-bisection fat-tree (the clusters studied were
        # non-blocking or close to it at the evaluated scales).
        return self.num_nodes / 2.0

    def build_graph(self) -> nx.Graph:
        g = nx.Graph()
        leaves = list(range(self.num_nodes))
        g.add_nodes_from(leaves)
        next_id = self.num_nodes
        frontier = leaves
        while len(frontier) > 1:
            parents = []
            for i in range(0, len(frontier), self.arity):
                parent = next_id
                next_id += 1
                parents.append(parent)
                for child in frontier[i : i + self.arity]:
                    g.add_edge(parent, child)
            frontier = parents
        return g


class Hypercube4D(Topology):
    """The X1/X1E network: 8-node crossbar subsets in a 4-D hypercube.

    Within a subset of ``subset_size`` nodes communication is one hop;
    across subsets the hop count is the Hamming distance between subset
    coordinates plus the two local hops.
    """

    def __init__(self, num_nodes: int, subset_size: int = 8) -> None:
        super().__init__(num_nodes)
        if subset_size < 1:
            raise ValueError("subset_size must be >= 1")
        self.subset_size = subset_size
        self.num_subsets = math.ceil(num_nodes / subset_size)

    def _subset(self, node: int) -> int:
        return node // self.subset_size

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        s, d = self._subset(src), self._subset(dst)
        if s == d:
            return 1
        hamming = bin(s ^ d).count("1")
        return hamming + 2

    def bisection_links(self) -> float:
        # A d-dimensional hypercube of 2^d vertices has 2^(d-1) bisection
        # links; express in node terms via the subset size.
        if self.num_subsets <= 1:
            return self.num_nodes / 2.0
        return max(1.0, self.num_subsets / 2.0) * self.subset_size / 2.0

    def build_graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        # local crossbars
        for s in range(self.num_subsets):
            members = [
                n
                for n in range(s * self.subset_size, (s + 1) * self.subset_size)
                if n < self.num_nodes
            ]
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    g.add_edge(a, b)
        # hypercube edges between subset leaders
        dim = max(1, math.ceil(math.log2(max(self.num_subsets, 2))))
        for s in range(self.num_subsets):
            for bit in range(dim):
                t = s ^ (1 << bit)
                if t < self.num_subsets and t > s:
                    g.add_edge(s * self.subset_size, t * self.subset_size)
        return g


class Torus2D(Topology):
    """2-D torus — the X1 interconnect beyond 512 MSPs."""

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        self.nx_dim = int(math.sqrt(num_nodes))
        while self.nx_dim > 1 and num_nodes % self.nx_dim:
            self.nx_dim -= 1
        self.ny_dim = num_nodes // self.nx_dim

    def _coords(self, node: int) -> tuple[int, int]:
        return node % self.nx_dim, node // self.nx_dim

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        ax, ay = self._coords(src)
        bx, by = self._coords(dst)
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.nx_dim - dx) + min(dy, self.ny_dim - dy)

    def bisection_links(self) -> float:
        return 2.0 * min(self.nx_dim, self.ny_dim)

    def build_graph(self) -> nx.Graph:
        g = nx.Graph()
        for node in range(self.num_nodes):
            x, y = self._coords(node)
            right = ((x + 1) % self.nx_dim) + y * self.nx_dim
            up = x + ((y + 1) % self.ny_dim) * self.nx_dim
            if right != node:
                g.add_edge(node, right)
            if up != node:
                g.add_edge(node, up)
        return g


def make_topology(kind, num_nodes: int) -> Topology:
    """Build the right topology for a :class:`NetworkTopology` value."""
    from ..machines.spec import NetworkTopology

    table = {
        NetworkTopology.FAT_TREE: FatTree,
        NetworkTopology.OMEGA: FatTree,
        NetworkTopology.CROSSBAR: FullCrossbar,
        NetworkTopology.HYPERCUBE_4D: Hypercube4D,
        NetworkTopology.TORUS_2D: Torus2D,
    }
    cls = table.get(kind)
    if cls is None:
        raise KeyError(f"no topology model for {kind!r}")
    return cls(num_nodes)
