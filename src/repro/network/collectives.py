"""Cost models for the collective patterns the four applications use.

* GTC's new particle decomposition adds ``Allreduce`` calls over the
  particle subgroups within each toroidal domain;
* PARATEC's handwritten parallel 3-D FFT is built on all-to-all
  transposes, "the bottleneck at high concurrencies";
* FVCAM's 2-D decomposition connects its two domain decompositions by
  transposes and otherwise exchanges halos with neighbors.

Costs follow the classic log-tree / pairwise-exchange algorithm models
(Thakur & Gropp), with topology bisection contention applied to the
dense patterns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .model import NetworkModel


@dataclass(frozen=True)
class CollectiveModel:
    """Collective-operation timing on top of a :class:`NetworkModel`."""

    net: NetworkModel

    def _alpha_beta(self) -> tuple[float, float]:
        """(latency, seconds-per-byte) for one inter-node message."""
        return self.net.latency_s, 1.0 / self.net.bandwidth_Bps

    def allreduce(self, nbytes: float, nprocs: int | None = None) -> float:
        """Recursive doubling/halving all-reduce over ``nprocs`` ranks."""
        p = nprocs if nprocs is not None else self.net.nprocs
        if p <= 1 or nbytes <= 0:
            return 0.0
        alpha, beta = self._alpha_beta()
        rounds = math.ceil(math.log2(p))
        # reduce-scatter + allgather: 2 log p latencies, 2 n bytes total.
        return 2.0 * rounds * alpha + 2.0 * nbytes * beta

    def barrier(self, nprocs: int | None = None) -> float:
        p = nprocs if nprocs is not None else self.net.nprocs
        if p <= 1:
            return 0.0
        alpha, _ = self._alpha_beta()
        return 2.0 * math.ceil(math.log2(p)) * alpha

    def broadcast(self, nbytes: float, nprocs: int | None = None) -> float:
        p = nprocs if nprocs is not None else self.net.nprocs
        if p <= 1 or nbytes <= 0:
            return 0.0
        alpha, beta = self._alpha_beta()
        return math.ceil(math.log2(p)) * (alpha + nbytes * beta)

    def gather(self, nbytes_total: float, nprocs: int | None = None) -> float:
        """Binomial-tree gather of ``nbytes_total`` onto one root.

        ``log2 p`` rounds of latency, but — unlike a broadcast — the
        root's link must absorb the other ranks' ``(p-1)/p`` share of
        the full payload, which is what serializes the operation.
        """
        p = nprocs if nprocs is not None else self.net.nprocs
        if p <= 1 or nbytes_total <= 0:
            return 0.0
        alpha, beta = self._alpha_beta()
        root_bytes = nbytes_total * (p - 1) / p
        return math.ceil(math.log2(p)) * alpha + root_bytes * beta

    def allgather(self, nbytes_total: float, nprocs: int | None = None) -> float:
        """Ring allgather: ``p - 1`` rounds of one ``n/p`` block each."""
        p = nprocs if nprocs is not None else self.net.nprocs
        if p <= 1 or nbytes_total <= 0:
            return 0.0
        alpha, beta = self._alpha_beta()
        per_block = nbytes_total / p
        return (p - 1) * (alpha + per_block * beta)

    def alltoall(
        self,
        nbytes_per_pair: float,
        nprocs: int | None = None,
        cross_fraction: float = 1.0,
    ) -> float:
        """Pairwise-exchange all-to-all, bisection-contention derated.

        ``nbytes_per_pair`` is the personalized payload each rank sends
        to each other rank (the FFT transpose block).
        """
        p = nprocs if nprocs is not None else self.net.nprocs
        if p <= 1 or nbytes_per_pair <= 0:
            return 0.0
        alpha, beta = self._alpha_beta()
        contention = self.net.contention_factor(cross_fraction)
        return (p - 1) * (alpha + nbytes_per_pair * beta * contention)

    def halo_exchange(
        self, nbytes_per_neighbor: float, num_neighbors: int
    ) -> float:
        """Simultaneous nearest-neighbor exchange (no bisection pressure).

        Each rank exchanges with ``num_neighbors`` peers; sends overlap
        pairwise so the cost is per-neighbor serial at full link rate.
        """
        if num_neighbors <= 0 or nbytes_per_neighbor <= 0:
            return 0.0
        alpha, beta = self._alpha_beta()
        return num_neighbors * (alpha + nbytes_per_neighbor * beta)

    def transpose(
        self,
        total_bytes_per_rank: float,
        group_size: int,
        cross_fraction: float = 1.0,
    ) -> float:
        """Data transposition within a ``group_size``-rank subgroup.

        Each rank redistributes ``total_bytes_per_rank`` evenly over the
        group — FVCAM's dynamics-to-remap transpose and PARATEC's FFT
        transposes both reduce to this.
        """
        if group_size <= 1 or total_bytes_per_rank <= 0:
            return 0.0
        per_pair = total_bytes_per_rank / group_size
        return self.alltoall(per_pair, group_size, cross_fraction)
