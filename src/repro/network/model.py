"""Message-passing cost model (Hockney latency/bandwidth + topology).

Point-to-point cost of an ``n``-byte message between two processors:

    t = latency + hops * per_hop + n / bandwidth

with the measured MPI latency and per-processor MPI bandwidth of
Table 1, a small per-hop router delay, and two derating mechanisms:

* **intra-node** messages skip the network (shared-memory copy at the
  node's STREAM bandwidth);
* the **X1E port sharing** halves effective bandwidth when the paired
  nodes' processors communicate simultaneously (Table 1's footnote).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machines.spec import MachineSpec
from .topology import Topology, make_topology

#: Router traversal delay per hop, seconds.  Small relative to the MPI
#: latencies of Table 1; matters only for multi-hop torus routes.
PER_HOP_SECONDS = 5.0e-8


@dataclass
class NetworkModel:
    """Cost model for one platform's interconnect at ``nprocs`` scale.

    ``protocol`` selects the interprocessor communication implementation
    (two-sided MPI by default); one-sided protocols reduce latency on
    the platforms whose networks support them.
    """

    spec: MachineSpec
    nprocs: int
    protocol: "CommProtocol | None" = None
    topology: Topology = field(init=False)

    #: MSP count beyond which the X1 interconnect degrades to a 2-D
    #: torus ("For more than 512 MSPs, the interconnect is a 2D torus").
    X1_TORUS_THRESHOLD = 512

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        kind = self.spec.topology
        from ..machines.spec import NetworkTopology

        if (
            kind is NetworkTopology.HYPERCUBE_4D
            and self.nprocs > self.X1_TORUS_THRESHOLD
        ):
            kind = NetworkTopology.TORUS_2D
        self.topology = make_topology(kind, self.num_nodes)

    @property
    def num_nodes(self) -> int:
        per = self.spec.node.cpus_per_node
        return (self.nprocs + per - 1) // per

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"rank {rank} out of range ({self.nprocs})")
        return rank // self.spec.node.cpus_per_node

    @property
    def latency_s(self) -> float:
        factor = 1.0
        if self.protocol is not None:
            from .protocols import latency_factor

            factor = latency_factor(self.spec, self.protocol)
        return self.spec.mpi_latency_us * 1e-6 * factor

    @property
    def bandwidth_Bps(self) -> float:
        bw = self.spec.mpi_bw_gbs * 1e9
        # X1E: node pairs share network ports.
        return bw / self.spec.node.network_ports_shared_by

    def ptp_time(self, nbytes: float, src: int, dst: int) -> float:
        """Seconds for one point-to-point message, rank to rank."""
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        if src == dst:
            return 0.0
        a, b = self.node_of(src), self.node_of(dst)
        if a == b:
            # Intra-node: a memory copy at STREAM speed, small latency.
            return 1e-6 + nbytes / (self.spec.stream_bw_gbs * 1e9)
        hops = self.topology.hops(a, b)
        return (
            self.latency_s
            + hops * PER_HOP_SECONDS
            + nbytes / self.bandwidth_Bps
        )

    def contention_factor(self, concurrent_cross_fraction: float = 1.0) -> float:
        """Bandwidth derating when a dense pattern floods the bisection.

        ``concurrent_cross_fraction`` is the fraction of processors whose
        traffic crosses the network bisection simultaneously (1.0 for a
        full transpose, ~0 for nearest-neighbor halos).
        """
        if not 0.0 <= concurrent_cross_fraction <= 1.0:
            raise ValueError("fraction outside [0, 1]")
        base = (
            self.topology.bisection_contention()
            * self.spec.bisection_oversubscription
        )
        return 1.0 + (base - 1.0) * concurrent_cross_fraction
