"""Interprocessor communication protocol options.

FVCAM's tuning space includes "MPI two-sided and MPI, SHMEM, and
Co-Array Fortran one-sided implementations of interprocessor
communication" — on machines whose networks support remote direct
access, one-sided puts skip the rendezvous handshake and most of the
software stack, cutting message latency by severalfold while leaving
the bandwidth unchanged.

This module models the protocols as latency multipliers with
per-platform availability: SHMEM and Co-Array Fortran need the
custom-network machines (Cray X1/X1E for CAF; Cray and NEC for SHMEM),
MPI variants run everywhere.
"""

from __future__ import annotations

import enum

from ..machines.spec import MachineSpec, NetworkTopology


class CommProtocol(enum.Enum):
    """The four interprocessor communication options the paper tunes."""

    MPI_TWO_SIDED = "mpi-2sided"
    MPI_ONE_SIDED = "mpi-1sided"
    SHMEM = "shmem"
    CO_ARRAY_FORTRAN = "caf"


#: Latency multiplier of each protocol relative to two-sided MPI.
LATENCY_FACTOR = {
    CommProtocol.MPI_TWO_SIDED: 1.00,
    CommProtocol.MPI_ONE_SIDED: 0.85,
    CommProtocol.SHMEM: 0.40,
    CommProtocol.CO_ARRAY_FORTRAN: 0.35,
}

#: Custom (RDMA-class) networks where one-sided hardware paths exist.
_CUSTOM = {NetworkTopology.HYPERCUBE_4D, NetworkTopology.CROSSBAR}

#: Cray machines, the only place Co-Array Fortran was available in 2005.
_CRAY = {"X1", "X1-SSP", "X1E"}


def supported_protocols(spec: MachineSpec) -> tuple[CommProtocol, ...]:
    """Protocols available on one platform."""
    out = [CommProtocol.MPI_TWO_SIDED, CommProtocol.MPI_ONE_SIDED]
    if spec.topology in _CUSTOM:
        out.append(CommProtocol.SHMEM)
    if spec.name in _CRAY:
        out.append(CommProtocol.CO_ARRAY_FORTRAN)
    return tuple(out)


def latency_factor(spec: MachineSpec, protocol: CommProtocol) -> float:
    """Latency multiplier, validating platform support."""
    if protocol not in supported_protocols(spec):
        raise ValueError(
            f"{protocol.value} is not available on {spec.name} "
            f"(have: {[p.value for p in supported_protocols(spec)]})"
        )
    return LATENCY_FACTOR[protocol]


def best_protocol(spec: MachineSpec) -> CommProtocol:
    """Lowest-latency protocol the platform supports.

    Matches the paper's empirical findings: Co-Array Fortran on the
    Crays, SHMEM on the NEC machines, plain MPI on the clusters.
    """
    return min(
        supported_protocols(spec), key=lambda p: LATENCY_FACTOR[p]
    )
