"""Legacy setup shim: metadata lives in pyproject.toml.

Kept so `pip install -e .` works in environments without the `wheel`
package (PEP 660 editable installs need it; the legacy path does not).
"""

from setuptools import setup

setup()
